"""Job-batched NoC cycle kernel: J independent simulations per vectorized step.

PR 3's struct-of-arrays engine (:class:`repro.noc.engine.BatchNocSimulator`)
made one sweep point fast, but a sweep still pays the Python interpreter once
per (cycle, node, job).  :class:`BatchedNocKernel` adds the same *job axis*
that the batched LDPC / turbo decoders put on their frame loops: J independent
jobs sharing one (topology, configuration) stack their struct-of-arrays state
— message columns, FIFO occupancy / head cursors / backing buffers, injection
pointers and credits, per-port sent counters — into ``(J, ...)`` NumPy arrays,
and every cycle advances **all jobs at once** through a handful of array
operations instead of J scalar loops.

Per cycle the kernel performs, vectorized over all ``J x P`` (job, node)
pairs:

1. **link arrivals** — occupancy increments and high-water marks for every
   message sent on the previous cycle (one scatter, one max);
2. **serving order** — FL keys ``(-occupancy, port)`` or RR rotation
   positions per (job, node), maintained *incrementally*: only rows whose
   FIFO occupancies changed since the last cycle are re-keyed and re-sorted
   (falling back to one full ``argsort`` when most rows changed), followed by
   gathers of every candidate's head message, destination and SSP output
   port from the dense routing matrices, restricted to the serving positions
   actually occupied this cycle;
3. **crossbar waves** — serving position w of *every* node of *every* job is
   arbitrated simultaneously: local deliveries take the memory port, SSP/ASP
   output-port grants clear bits of a per-(job, node) free-port mask, and
   losers wait (DCM) or request a deflection (SCM); the wave masks evolve in
   preallocated scratch buffers (no per-wave temporaries);
4. **PE injection** — credits, bypass runs and injection-FIFO pushes as
   ``(J, P)`` array updates.

SCM deflection draws are the one place the job axis meets a *sequential*
contract: each job's randomness is defined as its own ``random.Random``
stream consumed in (cycle, node, serving-position) order (see
:class:`repro.utils.rng.DeflectionStreams`), and a draw changes how the rest
of that node's pass unfolds.  Nodes that need a draw are therefore
*suspended* at their first drawing serving position, masked out of the
remaining waves, and replayed after the wave loop by a **vectorized resume**:
suspended (job, node) passes are ordered per job, split into rounds of at
most one pass per job (round k replays each job's k-th suspended node), and
every round advances all of its passes in lockstep — port selection, free-
mask updates and the bounded rejection draws themselves
(:meth:`~repro.utils.rng.DeflectionStreams.draw_batch`) are all batched
across jobs.  Within a job, rounds replay nodes in ascending node order and
each batched draw advances that job's word counter by exactly its rejection
count, so the per-job streams stay bit-identical to the scalar engines no
matter how many jobs draw at once.

Jobs that finish early are masked out (their FIFOs are empty, their serving
orders vanish, their rows stop changing — so the incremental serve-order
maintenance skips them for free — and the per-job ``ncycles`` is latched the
cycle they drain).  Configurations the job axis cannot express without
cross-node sequencing — bounded FIFO capacities, where backpressure makes
node n's pass observe node n-1's pops within the same cycle — fall back to
the scalar engine per job, so :meth:`BatchedNocKernel.run` is total over the
configuration space.

The kernel is pinned *cycle-exact, per job*, against
:class:`~repro.noc.engine.BatchNocSimulator` (which is itself pinned against
:class:`~repro.noc.simulator.ReferenceNocSimulator`) by
``tests/test_noc_batch_kernel.py``: same ncycles, delivered counts, per-node
FIFO high-water marks, hop/latency totals and deflection decisions for every
(topology, configuration, traffic, seed).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backend import ArrayBackend, BackendLike, resolve
from repro.errors import SimulationError
from repro.noc.config import CollisionPolicy, NocConfiguration, RoutingAlgorithm
from repro.noc.engine import BatchNocSimulator, MessageArrays
from repro.noc.message import MessageStatistics
from repro.noc.results import SimulationResult
from repro.noc.routing import RoutingTables, build_routing_tables
from repro.noc.topologies import Topology
from repro.noc.traffic import TrafficPattern
from repro.utils.rng import DeflectionStreams

__all__ = ["BatchedNocKernel"]


class _BatchedStatic:
    """Dense per-(topology, config) arrays shared by every batched run."""

    def __init__(self, topology: Topology, config: NocConfiguration, tables: RoutingTables):
        n = topology.n_nodes
        self.n_nodes = n
        self.n_arcs = topology.n_arcs
        in_deg = topology.in_degrees.astype(np.int64)
        out_deg = topology.out_degrees.astype(np.int64)

        # Flat FIFO ids exactly as the scalar engine lays them out: per node
        # its network input ports then its injection port.
        fifo_base = np.zeros(n, dtype=np.int64)
        np.cumsum(in_deg[:-1] + 1, out=fifo_base[1:])
        self.fifo_base = fifo_base
        self.n_fifos = int((in_deg + 1).sum())
        self.inject_fid = (fifo_base + in_deg).astype(np.int64)
        self.fcount = (in_deg + 1).astype(np.int64)  # serving slots per node
        self.fmax = int(self.fcount.max())

        # (node, slot) -> fid, padded with the dummy fifo id ``n_fifos`` (one
        # extra all-zero slot per job absorbs gathers/scatters at padding).
        fid_mat = np.full((n, self.fmax), self.n_fifos, dtype=np.int64)
        for node in range(n):
            fc = int(self.fcount[node])
            fid_mat[node, :fc] = np.arange(fifo_base[node], fifo_base[node] + fc)
        self.fid_mat = fid_mat
        # fid -> owning node (dummy slot maps to node 0; its head attributes
        # are never read because the dummy fifo stays empty).
        fifo_node = np.zeros(self.n_fifos + 1, dtype=np.int32)
        for node in range(n):
            fc = int(self.fcount[node])
            fifo_node[fifo_base[node] : fifo_base[node] + fc] = node
        self.fifo_node = fifo_node

        # (node, out port) -> downstream input-fifo id, dummy padded.
        self.max_out = max(int(out_deg.max()), 1)
        dest_node = topology.out_neighbor_matrix
        dest_port = topology.dest_input_port_matrix
        tgt = np.full((n, self.max_out), self.n_fifos, dtype=np.int64)
        for node in range(n):
            for port in range(int(out_deg[node])):
                tgt[node, port] = fifo_base[int(dest_node[node, port])] + int(
                    dest_port[node, port]
                )
        self.tgt_flat = tgt.reshape(-1).astype(np.int32)

        # Dense routing lookups.  The SSP matrix diagonal (-1: no route to
        # self) is lowered to port 0 so vectorized shifts stay defined; local
        # candidates never read it (they contend for the memory port instead).
        sp = tables.next_port_matrix.reshape(-1).astype(np.int32)
        self.sp_flat = np.where(sp < 0, 0, sp).astype(np.int32)
        ap_pad = tables.all_ports_matrix  # (n, n, K), -1 padded
        self.ap_k = ap_pad.shape[2]
        # Padding lowered to port 0 so bit shifts stay valid; the count matrix
        # masks the padded entries out of the argmin.
        self.ap_flat = (
            np.where(ap_pad < 0, 0, ap_pad).reshape(n * n, self.ap_k).astype(np.int32)
        )
        self.ap_cnt_flat = tables.port_count_matrix.reshape(-1).astype(np.int32)

        self.full_mask = ((1 << out_deg) - 1).astype(np.int64)
        self.rr_mode = config.routing_algorithm is RoutingAlgorithm.SSP_RR
        self.asp_mode = config.routing_algorithm.uses_all_paths
        self.scm_mode = config.collision_policy is CollisionPolicy.SCM
        # Word shift per deflection-candidate count (32 - bit_length), for
        # the batched rejection draws; index 0 is never consulted (a drawing
        # candidate always has at least one free port).
        self.shift_tab = np.array(
            [32] + [32 - k.bit_length() for k in range(1, self.max_out + 1)],
            dtype=np.int64,
        )
        # Scalar-replay lowerings (plain nested lists) for resume rounds too
        # small to amortize vectorized dispatch, plus the memoized free-port
        # bitmask -> ascending candidate tuple map of the scalar engines.
        self.out_deg = out_deg.tolist()
        self.sp_list: list[list[int]] = tables.next_port_matrix.tolist()
        self.tgt_list: list[list[int]] = tgt.tolist()
        self.ap_rows = tables.next_ports
        self.deflect_sets: dict[int, tuple[int, ...]] = {}
        # Dense bitmask lookups shared by the vectorized resume rounds
        # (free-port mask -> deflection candidate count, and (mask, draw) ->
        # the draw-th set bit, i.e. the scalar engines' ascending candidate
        # list) and by the table-driven RR serve order below (occupied-slot
        # mask -> n_occ).  Tiny for the paper's fan-outs; wide graphs fall
        # back to on-the-fly bit math / argsort.
        popcount_bits = 0
        if self.rr_mode and self.fmax <= 8:
            popcount_bits = 8
        if self.scm_mode and self.max_out <= 10:
            popcount_bits = max(popcount_bits, self.max_out)
        self.popcount: np.ndarray | None = None
        if popcount_bits:
            self.popcount = np.array(
                [bin(mask).count("1") for mask in range(1 << popcount_bits)],
                dtype=np.int64,
            )
        self.defl_pick: np.ndarray | None = None
        if self.scm_mode and self.max_out <= 10:
            n_masks = 1 << self.max_out
            pick = np.zeros((n_masks, self.max_out), dtype=np.int64)
            for mask in range(n_masks):
                ports = [q for q in range(self.max_out) if mask >> q & 1]
                pick[mask, : len(ports)] = ports
            self.defl_pick = pick
        self.config = config
        self.topology = topology
        self.tables = tables

        # RR serving order depends only on (node, pointer, occupied-slot
        # bitmask) — a finite space — so for the paper's small fan-ins the
        # whole rotate-and-partition sort is precomputed: ``rr_fid_tab`` maps
        # ``(node * fmax + ptr) * 256 + mask`` to the fids in serving order
        # (occupied slots rotation-first, empties after; empty order is
        # immaterial because serving position w only exists while w <
        # occupied count).  ``popcount`` above turns the same mask into n_occ.
        self.rr_fid_tab: np.ndarray | None = None
        if self.rr_mode and self.fmax <= 8:
            tab = np.empty((n * self.fmax * 256, self.fmax), dtype=np.int32)
            for node in range(n):
                fc = int(self.fcount[node])
                fids = fid_mat[node]
                for ptr in range(self.fmax):
                    base = (node * self.fmax + ptr) * 256
                    for mask in range(256):
                        occ_slots = sorted(
                            (s for s in range(fc) if mask >> s & 1),
                            key=lambda s: (s - ptr) % fc,
                        )
                        rest = [s for s in range(self.fmax) if not (mask >> s & 1) or s >= fc]
                        tab[base + mask] = fids[occ_slots + rest]
            self.rr_fid_tab = tab

        # FL serving order is a pure function of the pairwise occupancy
        # comparisons (longest first, ties by slot rank), so for small
        # fan-ins the per-cycle argsort collapses to: compute the
        # fmax*(fmax-1)/2 comparison bits, look the permutation up.
        self.fl_pairs: list[tuple[int, int]] | None = None
        self.fl_perm_tab: np.ndarray | None = None
        if not self.rr_mode and 2 <= self.fmax <= 4:
            import functools

            pairs = [
                (i, j) for i in range(self.fmax) for j in range(i + 1, self.fmax)
            ]

            def build_cmp(code):
                def cmp(a, b):
                    if a == b:
                        return 0
                    i, j = (a, b) if a < b else (b, a)
                    bit = code >> pairs.index((i, j)) & 1
                    first = j if bit else i
                    return -1 if first == a else 1

                return cmp

            perm = np.empty((1 << len(pairs), self.fmax), dtype=np.int8)
            for code in range(1 << len(pairs)):
                # Inconsistent (cyclic) codes cannot arise from real keys;
                # sorted() still yields some permutation for their rows.
                perm[code] = sorted(
                    range(self.fmax), key=functools.cmp_to_key(build_cmp(code))
                )
            self.fl_pairs = pairs
            self.fl_perm_tab = perm


class BatchedNocKernel:
    """Cycle engine advancing J jobs of one (topology, configuration) in lockstep.

    Construction is **seed-independent**: per-job seeds (the SCM deflection
    randomness) are passed to :meth:`run` only, so a sweep scheduler can reuse
    one kernel — and its precomputed dense wiring/routing state — across any
    jobs that share the graph and configuration.

    Parameters
    ----------
    topology:
        The NoC topology shared by every job of the batch.
    config:
        Simulation parameters shared by every job of the batch.
    routing_tables:
        Optional precomputed tables (recomputed from the topology if omitted).
    max_cycles:
        Hard safety bound on the simulated cycle count, applied per job.
    backend:
        Array-backend override (:func:`repro.backend.resolve` semantics).
        A backend with ``jit=True`` routes the scalar fallbacks — the
        per-job scalar engine and the small-round resume replay — through
        their JIT-able array-state twins (:mod:`repro.noc.engine_jit`) and
        raises the vectorize/replay crossover accordingly; results stay
        cycle-exact either way.
    """

    def __init__(
        self,
        topology: Topology,
        config: NocConfiguration,
        routing_tables: RoutingTables | None = None,
        max_cycles: int = 200_000,
        backend: BackendLike = None,
    ):
        if max_cycles <= 0:
            raise SimulationError(f"max_cycles must be positive, got {max_cycles}")
        self.topology = topology
        self.config = config
        self.tables = (
            routing_tables if routing_tables is not None else build_routing_tables(topology)
        )
        if self.tables.topology is not topology:
            raise SimulationError("routing tables were built for a different topology")
        self.max_cycles = max_cycles
        self.backend = backend
        # Both halves are built lazily: a kernel that only ever serves
        # scalar-fallback groups never pays for the dense batch state, and one
        # that only batches never builds the scalar engine's static state.
        self._static: _BatchedStatic | None = None
        self._scalar: BatchNocSimulator | None = None

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def run(
        self,
        traffics: Sequence[TrafficPattern],
        seeds: Sequence[int] | None = None,
    ) -> list[SimulationResult]:
        """Simulate one message-passing phase per job and return all measurements.

        ``traffics[j]`` and ``seeds[j]`` define job ``j``; results are returned
        in job order and are cycle-exact with ``BatchNocSimulator.run`` of each
        job in isolation.
        """
        traffics = list(traffics)
        if seeds is None:
            seeds = [0] * len(traffics)
        seeds = [int(seed) for seed in seeds]
        if len(seeds) != len(traffics):
            raise SimulationError(
                f"got {len(traffics)} traffic patterns but {len(seeds)} seeds"
            )
        if not traffics:
            return []
        for traffic in traffics:
            if traffic.n_nodes != self.topology.n_nodes:
                raise SimulationError(
                    f"traffic references {traffic.n_nodes} nodes but the topology has "
                    f"{self.topology.n_nodes}"
                )
        messages = [MessageArrays.from_traffic(traffic) for traffic in traffics]
        max_total = max(arrays.total for arrays in messages)
        # The job axis cannot express bounded-capacity backpressure (node n's
        # free-port view depends on node n-1's pops within the same cycle), and
        # a batch of one gains nothing from stacking: both run scalar.
        backend = resolve(self.backend)
        if len(traffics) == 1 or self.config.fifo_capacity <= max_total:
            if self._scalar is None:
                # Seed-independent: per-job seeds are passed to run() only.
                self._scalar = BatchNocSimulator(
                    self.topology, self.config, routing_tables=self.tables,
                    seed=0, max_cycles=self.max_cycles,
                )
            # Re-resolved per run: an active-backend switch between runs must
            # not be shadowed by the cached engine.
            self._scalar.backend = backend
            return [
                self._scalar.run(traffic, seed=seed)
                for traffic, seed in zip(traffics, seeds)
            ]
        if self._static is None:
            self._static = _BatchedStatic(self.topology, self.config, self.tables)
        return _run_batched(
            self._static, messages, traffics, seeds, self.max_cycles, backend
        )


# --------------------------------------------------------------------------- #
# Batched engine internals
# --------------------------------------------------------------------------- #
def _run_batched(
    st: _BatchedStatic,
    messages: list[MessageArrays],
    traffics: list[TrafficPattern],
    seeds: list[int],
    max_cycles: int,
    backend: ArrayBackend | None = None,
) -> list[SimulationResult]:
    """Advance the stacked (J, ...) state cycle by cycle until every job drains."""
    if backend is None:
        backend = resolve(None)
    n = st.n_nodes
    J = len(messages)
    Jn = J * n
    NFp = st.n_fifos + 1  # one dummy fifo slot per job absorbs padded scatters
    M = max(max(arrays.total for arrays in messages), 1)
    fmax = st.fmax
    rr_mode, asp_mode, scm_mode = st.rr_mode, st.asp_mode, st.scm_mode
    route_local = st.config.route_local
    rate = st.config.injection_rate
    # Serve-order key packing: FL keys are ``rank - (occ << occ_shift)`` and
    # RR keys penalize empty slots by ``empty_penalty``; both require the
    # serving-slot rank to fit below 1 << occ_shift, for any in-degree.
    occ_shift = fmax.bit_length()
    empty_penalty = 1 << occ_shift

    totals = np.array([arrays.total for arrays in messages], dtype=np.int64)

    # ---- flat per-message columns, padded to (J, M) ------------------- #
    # Everything the hot loop touches is int32: the largest index in play is
    # the flat buffer offset J * NFp * L, far below 2**31 at paper scales (the
    # grow path re-checks), and halving the element width roughly halves the
    # memory traffic of the per-cycle gathers.
    dest_flat = np.zeros(J * M, dtype=np.int32)
    bypass = np.zeros((J, M), dtype=bool)
    for j, arrays in enumerate(messages):
        dest_flat[j * M : j * M + arrays.total] = arrays.dest
        if not route_local and arrays.total:
            bypass[j, : arrays.total] = arrays.dest == arrays.source
    inj_cycle_flat = np.zeros(J * M, dtype=np.int32)
    del_cycle_flat = np.full(J * M, -1, dtype=np.int32)
    mis_flat = np.zeros(J * M, dtype=np.int8)
    int32_max = np.iinfo(np.int32).max

    # next_nonbypass[j, p]: first index >= p whose message enters the network
    # (suffix minimum over non-bypass positions; padding is "non-bypass" so
    # runs clamp at each node's end pointer below).
    has_bypass = bool(bypass.any())
    if has_bypass:
        pos = np.arange(M + 1, dtype=np.int32)
        idx = np.where(
            np.concatenate([bypass, np.zeros((J, 1), dtype=bool)], axis=1),
            np.int32(M + 1),
            pos,
        )
        nnb = np.minimum.accumulate(idx[:, ::-1], axis=1)[:, ::-1]
    else:
        nnb = None

    # ---- FIFO state: (J * NFp,) columns + growable backing buffers ----- #
    occ = np.zeros(J * NFp, dtype=np.int32)
    heads = np.zeros(J * NFp, dtype=np.int32)
    lens = np.zeros(J * NFp, dtype=np.int32)
    maxocc = np.zeros(J * NFp, dtype=np.int32)
    # Per-fifo backing capacity: most fifos see far fewer than M messages, so
    # the buffer starts small (cache-friendly) and doubles on demand; the
    # worst case (hotspot fifos, SCM deflection loops) still fits after a few
    # geometric grows.
    L = min(M + 4, 128)
    buf = np.zeros(J * NFp * L, dtype=np.int32)

    # Head-of-FIFO attribute caches: the serving pre-pass reads each
    # candidate's message id / locality / SSP port straight from these flat
    # columns instead of chasing buffer -> heads -> dest -> routing-table
    # indirections per slot; only fifos whose head may have changed during a
    # cycle (pops, pushes) are refreshed, and the refresh is idempotent.
    head_mid = np.zeros(J * NFp, dtype=np.int32)
    head_loc = np.zeros(J * NFp, dtype=bool)
    fifo_node = np.tile(st.fifo_node, J)
    fifo_jbm = np.repeat(np.arange(J, dtype=np.int32) * M, NFp)
    if asp_mode:
        head_dest = np.zeros(J * NFp, dtype=np.int32)
    else:
        fifo_spbase = fifo_node * n
        head_q = np.zeros(J * NFp, dtype=np.int32)

    # ---- per-(job, node) arbitration / injection state ----------------- #
    job_row = np.repeat(np.arange(J, dtype=np.int32), n)  # (Jn,)
    node_row = np.tile(np.arange(n, dtype=np.int32), J)  # (Jn,)
    jbase_nf = job_row * NFp
    jbase_m = job_row * M
    sp_base = node_row * n
    fid_tiled = st.fid_mat[node_row].astype(np.int32)  # (Jn, fmax)
    fid_idx_all = jbase_nf[:, None] + fid_tiled
    rank_tiled = np.broadcast_to(np.arange(fmax, dtype=np.int32), (Jn, fmax))
    rank_ap = np.broadcast_to(np.arange(st.ap_k, dtype=np.int32), (Jn, st.ap_k))
    fcount_row = st.fcount[node_row].astype(np.int32)
    full_row = st.full_mask[node_row].astype(np.int32)
    row_ar = np.arange(Jn, dtype=np.int32)
    # flat fifo index -> owning (job, node) serve row, for incremental
    # serve-order invalidation (the dummy fifo maps to node 0's row but its
    # occupancy never changes, so the mapping is never consulted for it).
    fid2row = (
        np.repeat(np.arange(J, dtype=np.int32), NFp) * n + np.tile(st.fifo_node, J)
    ).astype(np.int32)

    free = np.empty(Jn, dtype=np.int32)
    local_free = np.empty(Jn, dtype=bool)
    live = np.ones(Jn, dtype=bool)
    rr_ptr = np.zeros(Jn, dtype=np.int32) if rr_mode else None
    sent = np.zeros(Jn * st.max_out, dtype=np.int32) if asp_mode else None

    inj_ptr = np.empty((J, n), dtype=np.int32)
    inj_end = np.empty((J, n), dtype=np.int32)
    for j, arrays in enumerate(messages):
        inj_ptr[j] = arrays.node_offset[:-1]
        inj_end[j] = arrays.node_offset[1:]
    credit = np.zeros((J, n), dtype=np.float64)
    jj_col = np.arange(J, dtype=np.int32)[:, None]
    jbase_m2 = jj_col * M
    jj_mat = np.broadcast_to(jj_col, (J, n))

    delivered_j = np.zeros(J, dtype=np.int64)
    bypassed_j = np.zeros(J, dtype=np.int64)
    hops_j = np.zeros(J, dtype=np.int64)
    ncycles_j = np.zeros(J, dtype=np.int64)
    active = totals > 0
    draws = DeflectionStreams(seeds)

    # ---- persistent serving order, maintained incrementally ------------ #
    # Serve keys depend only on a row's FIFO occupancies (plus its RR pointer,
    # which only advances on cycles where the row also popped), so rows whose
    # fifos saw no pop/push/arrival keep their order from the previous cycle.
    # All occupancies start at zero, where both FL and RR keys sort to the
    # identity permutation.
    n_occ = np.zeros(Jn, dtype=np.int32)
    serve_fid = fid_tiled.copy()
    idx_all = jbase_nf[:, None] + serve_fid
    chg_parts: list[np.ndarray] = []  # fifo ids whose occupancy changed
    rr_tab = st.rr_fid_tab if rr_mode else None
    if rr_tab is not None:
        rr_nodebase = node_row.astype(np.int64) * (fmax * 256)
    fl_tab = st.fl_perm_tab
    fl_pairs = st.fl_pairs
    # Transposed copy of the serve-slot fifo indices: gathering through it
    # yields C-contiguous (fmax, Jn) occupancies, so the per-slot compares of
    # the table paths below run on contiguous rows instead of strided columns.
    fid_idx_allT = np.ascontiguousarray(fid_idx_all.T)

    def _refresh_serve(ch: np.ndarray) -> None:
        """Re-key and re-sort the serve rows owning the changed fifos."""
        if 2 * ch.size >= Jn:
            rows = None
            ofT = occ[fid_idx_allT]  # (fmax, Jn)
        else:
            rows = np.unique(fid2row[ch])
            ofT = occ[fid_idx_allT[:, rows]]  # (fmax, k)
        if fl_tab is not None:
            # Table-driven FL: the permutation is determined by which slot of
            # each comparison pair holds the longer fifo.
            i0, j0 = fl_pairs[0]
            code = (ofT[j0] > ofT[i0]) * 1
            for b in range(1, len(fl_pairs)):
                i, j = fl_pairs[b]
                code += (ofT[j] > ofT[i]) * (1 << b)
            order = fl_tab[code]
            if rows is None:
                n_occ[:] = (ofT > 0).sum(axis=0)
                serve_fid[:] = np.take_along_axis(fid_tiled, order, axis=1)
                idx_all[:] = jbase_nf[:, None] + serve_fid
            else:
                n_occ[rows] = (ofT > 0).sum(axis=0)
                sf = np.take_along_axis(fid_tiled[rows], order, axis=1)
                serve_fid[rows] = sf
                idx_all[rows] = jbase_nf[rows, None] + sf
            return
        if rr_tab is not None:
            # Table-driven RR: pack the occupied slots into a bitmask and
            # look the rotated occupied-first order straight up.
            occupied = ofT > 0
            mask = np.packbits(occupied, axis=0, bitorder="little")[0]
            if rows is None:
                tabidx = rr_nodebase + rr_ptr * np.int64(256) + mask
                n_occ[:] = st.popcount[mask]
                serve_fid[:] = rr_tab[tabidx]
                idx_all[:] = jbase_nf[:, None] + serve_fid
            else:
                tabidx = rr_nodebase[rows] + rr_ptr[rows] * np.int64(256) + mask
                n_occ[rows] = st.popcount[mask]
                sf = rr_tab[tabidx]
                serve_fid[rows] = sf
                idx_all[rows] = jbase_nf[rows, None] + sf
            return
        of = ofT.T
        occupied = of > 0
        if rows is None:
            n_occ[:] = occupied.sum(axis=1)
            if rr_mode:
                rot = rank_tiled - rr_ptr[:, None]
                key = np.where(rot < 0, rot + fcount_row[:, None], rot)
                key += (~occupied) * empty_penalty
            else:
                key = rank_tiled - (of << occ_shift)
            order = np.argsort(key, axis=1)
            serve_fid[:] = np.take_along_axis(fid_tiled, order, axis=1)
            idx_all[:] = jbase_nf[:, None] + serve_fid
            return
        n_occ[rows] = occupied.sum(axis=1)
        rank_k = rank_tiled[: rows.size]
        if rr_mode:
            rot = rank_k - rr_ptr[rows, None]
            key = np.where(rot < 0, rot + fcount_row[rows, None], rot)
            key += (~occupied) * empty_penalty
        else:
            key = rank_k - (of << occ_shift)
        order = np.argsort(key, axis=1)
        sf = np.take_along_axis(fid_tiled[rows], order, axis=1)
        serve_fid[rows] = sf
        idx_all[rows] = jbase_nf[rows, None] + sf

    # Reusable per-cycle wave buffers: mask rows [w] are written in wave
    # order (the commit sweep only sees rows zeroed at cycle start), and the
    # per-wave mask algebra runs entirely in (Jn,) scratch vectors.
    deliver_t = np.empty((fmax, Jn), dtype=bool)
    send_t = np.empty((fmax, Jn), dtype=bool)
    or_t = np.empty((fmax, Jn), dtype=bool)
    # zeroed, not empty: the wave loop shifts by every lane of qsel_t[w]
    # (losers are masked after the shift), so lanes never written this cycle
    # must still hold valid shift counts
    qsel_t = np.zeros((fmax, Jn), dtype=np.int32) if asp_mode else None
    v_s = np.empty(Jn, dtype=bool)
    t1_s = np.empty(Jn, dtype=bool)
    deliver_s = np.empty(Jn, dtype=bool)
    nonloc_s = np.empty(Jn, dtype=bool)
    send_s = np.empty(Jn, dtype=bool)
    need_s = np.empty(Jn, dtype=bool) if scm_mode else None
    tmp_i = np.empty(Jn, dtype=np.int32)
    tmp_b = np.empty(Jn, dtype=np.int32)
    one32 = np.int32(1)

    pend_idx: np.ndarray | None = None  # arrivals scheduled for the next cycle
    injecting = bool(active.any())
    cycle = 0

    while active.any():
        if cycle > max_cycles:
            stuck = np.flatnonzero(active)
            raise SimulationError(
                f"simulation exceeded {max_cycles} cycles with jobs "
                f"{stuck.tolist()} still in flight "
                f"({int((totals - delivered_j)[stuck].sum())} messages)"
            )

        # 1. Link arrivals scheduled on the previous cycle.  At most one
        # message per (job, input fifo) per cycle (an input port terminates a
        # single arc), so the indices are unique and plain fancy ops suffice.
        if pend_idx is not None:
            occ[pend_idx] += 1
            maxocc[pend_idx] = np.maximum(maxocc[pend_idx], occ[pend_idx])
            chg_parts.append(pend_idx)
            pend_idx = None
        # Serving orders catch up with every occupancy change since the last
        # pass (pops, pushes, the arrivals just applied).
        if chg_parts:
            ch = np.concatenate(chg_parts) if len(chg_parts) > 1 else chg_parts[0]
            _refresh_serve(ch)
            chg_parts = []
        send_idx_parts: list[np.ndarray] = []
        send_job_parts: list[np.ndarray] = []
        upd_parts: list[np.ndarray] = []  # fifos whose head cache needs refresh

        # 2. Crossbar pass: one vectorized arbitration step per serving
        # position ("wave").  The wave loop only evolves masks (free ports,
        # local port, deliver/send flags); all FIFO pops, delivery stamps and
        # downstream pushes commit in one batch afterwards.
        wmax = int(n_occ.max())
        if wmax:
            idx_w = idx_all.T[:wmax]  # fancy-indexing with the transposed view
            # yields C-contiguous (wmax, Jn) results: per-wave rows are flat,
            # and only the serving positions occupied somewhere are gathered.
            mid_t = head_mid[idx_w]
            isloc_t = head_loc[idx_w]
            if asp_mode:
                dest_t = head_dest[idx_w]
            else:
                q_t = head_q[idx_w]

            np.copyto(free, full_row)
            local_free.fill(True)
            dt = deliver_t[:wmax]
            stw = send_t[:wmax]
            dt.fill(False)
            stw.fill(False)
            susp_rows: list[np.ndarray] = []
            susp_wave: list[int] = []
            susp_any = False

            for w in range(wmax):
                np.greater(n_occ, w, out=v_s)
                if susp_any:
                    v_s &= live
                if not v_s.any():
                    break
                np.logical_and(v_s, isloc_t[w], out=t1_s)
                np.logical_and(t1_s, local_free, out=deliver_s)
                np.logical_xor(v_s, t1_s, out=nonloc_s)
                if asp_mode:
                    # Traffic spreading evaluates only the wave's non-local
                    # candidates; beyond wave 0 those are a shrinking subset,
                    # so the (rows, K) port scoring runs compressed.
                    nlr = np.flatnonzero(nonloc_s)
                    ap_idx = sp_base[nlr] + dest_t[w, nlr]
                    ports = st.ap_flat[ap_idx]  # (k, K)
                    usable = (rank_ap[: nlr.size] < st.ap_cnt_flat[ap_idx][:, None]) & (
                        ((free[nlr, None] >> ports) & 1) > 0
                    )
                    cost = sent[(nlr[:, None] * st.max_out) + ports]
                    score = np.where(
                        usable, cost * (st.ap_k + 1) + rank_ap[: nlr.size], int32_max
                    )
                    best = np.argmin(score, axis=1)
                    ark = row_ar[: nlr.size]
                    has_port = score[ark, best] != int32_max
                    q = qsel_t[w]
                    q[nlr] = ports[ark, best]
                    bitw = np.int32(1) << q
                    send_s.fill(False)
                    send_s[nlr] = has_port
                else:
                    q = q_t[w]
                    bitw = np.left_shift(one32, q, out=tmp_b)
                    np.bitwise_and(free, bitw, out=tmp_i)
                    np.not_equal(tmp_i, 0, out=t1_s)
                    np.logical_and(nonloc_s, t1_s, out=send_s)
                if scm_mode:
                    # need = non-local, no grantable port, some port still free
                    np.logical_xor(nonloc_s, send_s, out=need_s)
                    np.not_equal(free, 0, out=t1_s)
                    need_s &= t1_s
                    if need_s.any():
                        # A drawing candidate is non-local with no grantable
                        # port, so it is disjoint from this wave's deliver and
                        # send sets; masking ``live`` only affects later waves.
                        rows = np.flatnonzero(need_s)
                        live[rows] = False
                        susp_any = True
                        susp_rows.append(rows)
                        susp_wave.append(w)
                np.multiply(bitw, send_s, out=tmp_i)
                np.subtract(free, tmp_i, out=free)
                np.logical_xor(local_free, deliver_s, out=local_free)
                dt[w] = deliver_s
                stw[w] = send_s
                if asp_mode:
                    rsw = np.flatnonzero(send_s)
                    if rsw.size:
                        # Traffic spreading reads the counters within the same
                        # pass, so ASP send tallies commit per wave.
                        sent[rsw * st.max_out + q[rsw]] += 1

            # 2b. Batched commits of everything the waves granted (one nonzero
            # sweep; deliveries and sends are split off its result).
            orw = or_t[:wmax]
            np.logical_or(dt, stw, out=orw)
            wp, rp = np.nonzero(orw)
            if wp.size:
                pidx = idx_all[rp, wp]
                heads[pidx] += 1
                occ[pidx] -= 1
                upd_parts.append(pidx)
                chg_parts.append(pidx)
            dmask = dt[wp, rp]
            wd, rd = wp[dmask], rp[dmask]
            if wd.size:
                del_cycle_flat[jbase_m[rd] + mid_t[wd, rd]] = cycle
                delivered_j += np.bincount(job_row[rd], minlength=J)
            smask = ~dmask
            ws, rs = wp[smask], rp[smask]
            if ws.size:
                qs = qsel_t[ws, rs] if asp_mode else q_t[ws, rs]
                tf = st.tgt_flat[node_row[rs] * st.max_out + qs]
                sidx = job_row[rs] * NFp + tf
                pos = lens[sidx]
                if int(pos.max()) >= L:
                    buf, L = _grow(buf, J * NFp, L)
                buf[sidx * L + pos] = mid_t[ws, rs]
                lens[sidx] += 1
                send_idx_parts.append(sidx)
                send_job_parts.append(job_row[rs])

            # 2c. Vectorized resume of draw-needing nodes: rounds of at most
            # one pass per job, in exact per-job (node, serving-position)
            # stream order, with deferred scatters.
            if susp_rows:
                buf, L = _resume_suspended(
                    st, susp_rows, susp_wave, n_occ, serve_fid, mid_t,
                    dest_flat, free, local_free, heads, occ, lens,
                    buf, L, NFp, M, J, del_cycle_flat, mis_flat, delivered_j,
                    sent, draws, send_idx_parts, send_job_parts, upd_parts,
                    chg_parts, cycle, backend,
                )
                live[np.concatenate(susp_rows)] = True

            if rr_mode:
                np.greater(n_occ, 0, out=v_s)
                rr_ptr += v_s
                np.remainder(rr_ptr, fcount_row, out=rr_ptr)

        # 3. PE injection at rate R; bypass runs (RL = 0 local messages) cost
        # neither credit nor FIFO space and deliver immediately.
        if injecting:
            rem = inj_ptr < inj_end
            if rem.any():
                credit += rate * rem
                if has_bypass:
                    nb1 = np.minimum(nnb[jj_mat, inj_ptr], inj_end)
                    nb1 = np.where(rem, nb1, inj_ptr)
                else:
                    nb1 = inj_ptr
                can = rem & (nb1 < inj_end) & (credit >= 1.0)
                ptr2 = nb1 + can
                if has_bypass:
                    nb2 = np.where(
                        can,
                        np.minimum(nnb[jj_mat, ptr2], inj_end),
                        nb1,
                    )
                else:
                    nb2 = ptr2
                credit -= can
                if can.any():
                    jc, nc = np.nonzero(can)
                    slot = nb1[jc, nc]
                    sidx = (jc * NFp + st.inject_fid[nc]).astype(np.int32)
                    pos = lens[sidx]
                    if int(pos.max()) >= L:
                        buf, L = _grow(buf, J * NFp, L)
                    buf[sidx * L + pos] = slot
                    lens[sidx] += 1
                    occ[sidx] += 1
                    maxocc[sidx] = np.maximum(maxocc[sidx], occ[sidx])
                    inj_cycle_flat[jc * M + slot] = cycle
                    upd_parts.append(sidx)
                    chg_parts.append(sidx)
                if has_bypass:
                    c1 = np.where(rem, nb1 - inj_ptr, 0)
                    c2 = nb2 - ptr2
                    n_bypassed = int(c1.sum() + c2.sum())
                    if n_bypassed:
                        starts = np.concatenate(
                            [(jbase_m2 + inj_ptr)[c1 > 0], (jbase_m2 + ptr2)[c2 > 0]]
                        )
                        counts = np.concatenate([c1[c1 > 0], c2[c2 > 0]])
                        ends = np.cumsum(counts)
                        idxs = (
                            np.repeat(starts, counts)
                            + np.arange(n_bypassed, dtype=np.int64)
                            - np.repeat(ends - counts, counts)
                        )
                        inj_cycle_flat[idxs] = cycle
                        del_cycle_flat[idxs] = cycle
                        per_job = (c1 + c2).sum(axis=1)
                        delivered_j += per_job
                        bypassed_j += per_job
                inj_ptr = np.where(rem, nb2, inj_ptr)
            else:
                injecting = False

        # 4. Cycle bookkeeping: merge this cycle's sends into next cycle's
        # arrivals, count hops, refresh the head caches of touched fifos, and
        # latch finished jobs.
        if send_idx_parts:
            pend_idx = (
                np.concatenate(send_idx_parts)
                if len(send_idx_parts) > 1
                else send_idx_parts[0]
            )
            jobs_sent = (
                np.concatenate(send_job_parts)
                if len(send_job_parts) > 1
                else send_job_parts[0]
            )
            hops_j += np.bincount(jobs_sent, minlength=J)
            upd_parts.append(pend_idx)
        if upd_parts:
            ch = np.concatenate(upd_parts) if len(upd_parts) > 1 else upd_parts[0]
            hm = buf[ch * L + np.minimum(heads[ch], L - 1)]
            head_mid[ch] = hm
            hd = dest_flat[fifo_jbm[ch] + hm]
            head_loc[ch] = hd == fifo_node[ch]
            if asp_mode:
                head_dest[ch] = hd
            else:
                head_q[ch] = st.sp_flat[fifo_spbase[ch] + hd]
        cycle += 1
        finished = active & (delivered_j >= totals)
        if finished.any():
            ncycles_j[finished] = cycle
            active &= ~finished

    return _collect_batched(
        st, messages, traffics, J, NFp, M, maxocc, ncycles_j, delivered_j,
        bypassed_j, hops_j, inj_cycle_flat, del_cycle_flat, mis_flat,
    )


def _grow(buf: np.ndarray, rows: int, L: int) -> tuple[np.ndarray, int]:
    """Double the per-fifo backing-buffer capacity (deflection loops only)."""
    new_l = L * 2
    if rows * new_l >= 2**31:
        raise SimulationError(
            "batched FIFO backing buffers outgrew the int32 index space"
        )
    new = np.zeros(rows * new_l, dtype=buf.dtype)
    new.reshape(rows, new_l)[:, :L] = buf.reshape(rows, L)
    return new, new_l


#: Smallest resume round worth vectorizing: below this many passes the NumPy
#: dispatch overhead of the lockstep exceeds a plain scalar replay, so the
#: remaining passes run through :func:`_resume_python` instead (measured
#: crossover on the Table-I grid; see benchmarks/bench_deflection_draws.py).
_VEC_MIN_ROUND = 96

#: Same crossover for a ``jit=True`` backend, where the replay runs through
#: the compiled :func:`repro.noc.engine_jit.resume_replay`: the replay side
#: gets orders of magnitude cheaper while the vectorized rounds stay NumPy,
#: so far more rounds fall to the replay.  Re-measured per host by
#: ``benchmarks/bench_backends.py`` when numba is actually installed.
_VEC_MIN_ROUND_JIT = 1024


def _vec_min_round(backend: ArrayBackend) -> int:
    """Vectorize/replay crossover for the active backend's replay path."""
    return _VEC_MIN_ROUND_JIT if backend.jit else _VEC_MIN_ROUND


def _resume_suspended(
    st, susp_rows, susp_wave, n_occ, serve_fid, mid_t, dest_flat,
    free_arr, local_free_arr, heads, occ, lens, buf, L, NFp, M, J,
    del_cycle_flat, mis_flat, delivered_j, sent, draws,
    send_idx_parts, send_job_parts, upd_parts, chg_parts, cycle,
    backend,
):
    """Replay every suspended (job, node) pass, vectorized across jobs.

    A suspended pass must consume its job's deflection words *after* every
    suspended pass of the same job at a lower node id and *before* every one
    at a higher node id — but passes of different jobs are fully independent.
    The replay therefore runs in **rounds**: suspended rows are sorted by
    flat (job, node) id and round k replays the k-th suspended pass of every
    job that has one.  Each round walks its passes' serving positions in
    lockstep — the per-candidate gathers, port selection against the evolving
    free masks, and the bounded rejection draws
    (:meth:`~repro.utils.rng.DeflectionStreams.draw_batch`, one distinct job
    per pass) are all batched — and each draw advances its job's word counter
    by exactly its rejection count, which is what makes round k+1 start at
    the very word a scalar replay would.

    Round sizes shrink fast (most jobs suspend at most one node per cycle),
    and a lockstep over a handful of passes costs more in NumPy dispatch than
    it saves: once the current round falls under ``_VEC_MIN_ROUND`` passes,
    all passes still owed (every not-yet-replayed rank, in sorted row order —
    which is exactly the per-job stream order) run through the scalar
    :func:`_resume_python` instead.  All pops / deliveries / pushes from both
    paths are scattered back in one batch at the end.
    """
    n = st.n_nodes
    max_out = st.max_out
    asp, scm = st.asp_mode, st.scm_mode
    vec_min = _vec_min_round(backend)
    if backend.jit:
        from repro.noc.engine_jit import resume_replay

        replay = resume_replay
    else:
        replay = _resume_python
    rows = susp_rows[0] if len(susp_rows) == 1 else np.concatenate(susp_rows)
    if len(susp_rows) == 1:
        w0s = np.full(rows.size, susp_wave[0], dtype=np.int64)
    else:
        w0s = np.repeat(
            np.array(susp_wave, dtype=np.int64), [len(r) for r in susp_rows]
        )
    order = np.argsort(rows)  # rows are unique: one suspension per pass
    rows = rows[order]
    w0s = w0s[order]
    all_jobs = rows // n
    k_total = rows.size
    # Rank within job: rows are sorted, so each job's passes are contiguous
    # and the round-k pass of the job starting at ``starts[g]`` sits at
    # ``starts[g] + k`` whenever that job has more than k passes.
    newjob = np.empty(k_total, dtype=bool)
    newjob[0] = True
    np.not_equal(all_jobs[1:], all_jobs[:-1], out=newjob[1:])
    starts = np.flatnonzero(newjob)
    counts = np.diff(np.append(starts, k_total))
    n_rounds = int(counts.max())

    int32_max = np.iinfo(np.int32).max
    arange_out = np.arange(max_out, dtype=np.int64)
    one64 = np.int64(1)
    pops_parts: list[np.ndarray] = []
    dels_parts: list[np.ndarray] = []
    deljob_parts: list[np.ndarray] = []
    mis_parts: list[np.ndarray] = []
    ssidx_parts: list[np.ndarray] = []
    smid_parts: list[np.ndarray] = []
    sjob_parts: list[np.ndarray] = []

    for round_k in range(n_rounds):
        sel = starts[counts > round_k] + round_k
        if sel.size < vec_min:
            # Every pass of rank >= round_k is still owed; sorted row order
            # keeps each job's passes in ascending node order, so the scalar
            # replay consumes each stream exactly where this round left it.
            if round_k:
                rank = np.arange(k_total) - np.repeat(starts, counts)
                rest = rank >= round_k
                rest_rows, rest_w0 = rows[rest], w0s[rest]
            else:
                rest_rows, rest_w0 = rows, w0s
            replay(
                st, rest_rows, rest_w0, n_occ, serve_fid, mid_t, dest_flat,
                free_arr, local_free_arr, sent, draws, M, NFp,
                pops_parts, dels_parts, deljob_parts, mis_parts,
                ssidx_parts, smid_parts, sjob_parts,
            )
            break
        rrows = rows[sel]
        rjobs = all_jobs[sel]
        rnodes = rrows - rjobs * n
        pos = w0s[sel].copy()
        end = n_occ[rrows].astype(np.int64)
        fr = free_arr[rrows].astype(np.int64)
        lf = local_free_arr[rrows].copy()
        jb_nf = rjobs * NFp
        jb_m = rjobs * M
        spb = rnodes.astype(np.int64) * n
        tgt_base = rnodes * max_out
        sfid = serve_fid[rrows]  # (k, fmax)
        arange_k = np.arange(rrows.size)
        popcount, defl_pick = st.popcount, st.defl_pick
        while True:
            # All per-pass columns stay compressed to the passes still
            # walking their serving positions, so every op below is dense.
            m = mid_t[pos, rrows]
            d = dest_flat[jb_m + m]
            isloc = d == rnodes
            dlv = isloc & lf
            if asp:
                ap_idx = spb + d
                ports = st.ap_flat[ap_idx]  # (k, K)
                kr = np.arange(st.ap_k, dtype=np.int32)
                usable = (kr < st.ap_cnt_flat[ap_idx][:, None]) & (
                    ((fr[:, None] >> ports) & 1) > 0
                )
                cost = sent[(rrows[:, None].astype(np.int64) * max_out) + ports]
                score = np.where(usable, cost * (st.ap_k + 1) + kr, int32_max)
                best = np.argmin(score, axis=1)
                ar = arange_k[: rrows.size]
                has_port = score[ar, best] != int32_max
                out_q = ports[ar, best].astype(np.int64)
                can = ~isloc & has_port
            else:
                out_q = st.sp_flat[spb + d].astype(np.int64)
                can = ~isloc & (((fr >> out_q) & 1) > 0)
            send_m = can
            if scm:
                needs = ~(isloc | can) & (fr != 0)
                ni = np.flatnonzero(needs)
                if ni.size:
                    fm = fr[ni]
                    if defl_pick is not None:
                        # The drawn port is the r-th set bit of the free mask
                        # (ascending, as the scalar candidate lists) — both
                        # count and pick come from the dense mask lookups.
                        ncand = popcount[fm]
                        rdraw = draws.draw_batch(
                            rjobs[ni], ncand, shifts=st.shift_tab[ncand]
                        )
                        out_q[ni] = defl_pick[fm, rdraw]
                    else:
                        bits = (fm[:, None] >> arange_out) & 1  # (kn, max_out)
                        ncand = bits.sum(axis=1)
                        rdraw = draws.draw_batch(
                            rjobs[ni], ncand, shifts=st.shift_tab[ncand]
                        )
                        csum = np.cumsum(bits, axis=1)
                        out_q[ni] = np.argmax(
                            (csum == (rdraw + 1)[:, None]) & (bits > 0), axis=1
                        )
                    send_m = send_m | needs
                    mis_parts.append(jb_m[ni] + m[ni])
            di = np.flatnonzero(dlv)
            si = np.flatnonzero(send_m)
            if di.size:
                pops_parts.append(jb_nf[di] + sfid[di, pos[di]])
                dels_parts.append(jb_m[di] + m[di])
                deljob_parts.append(rjobs[di])
                lf &= ~dlv
            if si.size:
                qo = out_q[si]
                fr &= ~((one64 << out_q) * send_m)
                pops_parts.append(jb_nf[si] + sfid[si, pos[si]])
                if asp:
                    sent[rrows[si].astype(np.int64) * max_out + qo] += 1
                ssidx_parts.append(jb_nf[si] + st.tgt_flat[tgt_base[si] + qo])
                smid_parts.append(m[si])
                sjob_parts.append(rjobs[si])
            pos += 1
            keep = pos < end
            if not keep.any():
                break
            if not keep.all():
                rrows = rrows[keep]
                rjobs = rjobs[keep]
                rnodes = rnodes[keep]
                pos = pos[keep]
                end = end[keep]
                fr = fr[keep]
                lf = lf[keep]
                jb_nf = jb_nf[keep]
                jb_m = jb_m[keep]
                spb = spb[keep]
                tgt_base = tgt_base[keep]
                sfid = sfid[keep]
        # free / local-port state is per cycle; nothing else to write back.

    if pops_parts:
        parr = np.concatenate(pops_parts)
        heads[parr] += 1
        occ[parr] -= 1
        upd_parts.append(parr)
        chg_parts.append(parr)
    if dels_parts:
        del_cycle_flat[np.concatenate(dels_parts)] = cycle
        delivered_j += np.bincount(
            np.concatenate(deljob_parts), minlength=J
        ).astype(np.int64)
    if mis_parts:
        mis_flat[np.concatenate(mis_parts)] = 1
    if ssidx_parts:
        sarr = np.concatenate(ssidx_parts).astype(np.int32)
        pos = lens[sarr]
        if int(pos.max()) >= L:
            buf, L = _grow(buf, len(lens), L)
        buf[sarr * L + pos] = np.concatenate(smid_parts)
        lens[sarr] += 1
        send_idx_parts.append(sarr)
        send_job_parts.append(np.concatenate(sjob_parts).astype(np.int32))
    return buf, L


def _resume_python(
    st, rows, w0s, n_occ, serve_fid, mid_t, dest_flat, free_arr,
    local_free_arr, sent, draws, M, NFp,
    pops_parts, dels_parts, deljob_parts, mis_parts,
    ssidx_parts, smid_parts, sjob_parts,
):
    """Scalar replay of a small set of suspended passes, in sorted row order.

    A direct port of the scalar engine's serve loop over plain Python lists:
    the per-candidate values are gathered in a handful of batched reads, the
    loop itself touches no NumPy state, and its pops / deliveries / pushes
    are appended to the caller's scatter lists.  ``rows`` must be sorted by
    flat (job, node) id — the per-job stream order — and each drawing
    candidate consumes its job's word stream through the shared
    :class:`~repro.utils.rng.DeflectionStreams` scalar path, so the replay is
    interchangeable with the vectorized rounds draw for draw.
    """
    n = st.n_nodes
    asp, scm = st.asp_mode, st.scm_mode
    sub_l = rows.tolist()
    jobs = rows // n
    w0_l = w0s.tolist()
    sf_l = serve_fid[rows].tolist()
    mids = mid_t[:, rows]  # (wmax, r)
    mid_l = mids.T.tolist()
    dest_l = dest_flat[(jobs * M)[None, :] + mids].T.tolist()
    free_l = free_arr[rows].tolist()
    lf_l = local_free_arr[rows].tolist()
    nocc_l = n_occ[rows].tolist()
    if asp:
        sent2 = sent.reshape(-1, st.max_out)
        sent_l = sent2[rows].tolist()
    sp_list, tgt_list = st.sp_list, st.tgt_list
    deflect_sets = st.deflect_sets
    # Inlined DeflectionStreams state: the bounded word walk below is the
    # scalar draw() with the per-call overhead stripped (the cursor array and
    # word matrix are shared with the vectorized rounds, draw for draw).
    shift_l = st.shift_tab.tolist()
    cursors = draws._cursors
    chunk = draws.chunk
    counts = draws.draw_counts
    pops: list[int] = []
    dels: list[int] = []
    deljobs: list[int] = []
    mis: list[int] = []
    s_sidx: list[int] = []
    s_mid: list[int] = []
    s_job: list[int] = []

    for i, row in enumerate(sub_l):
        j, node = divmod(row, n)
        free = free_l[i]
        lf = lf_l[i]
        sf, ml, dl = sf_l[i], mid_l[i], dest_l[i]
        jb_m = j * M
        jb_nf = j * NFp
        sp_row = sp_list[node]
        tgt_row = tgt_list[node]
        if asp:
            ap_row = st.ap_rows[node]
            se = sent_l[i]
        out_deg = st.out_deg[node]
        for w in range(w0_l[i], nocc_l[i]):
            mid = ml[w]
            dest = dl[w]
            if dest == node:
                if lf:
                    pops.append(jb_nf + sf[w])
                    dels.append(jb_m + mid)
                    deljobs.append(j)
                    lf = False
                continue
            out = -1
            if asp:
                best_count = -1
                for q in ap_row[dest]:
                    if free >> q & 1:
                        c = se[q]
                        if best_count < 0 or c < best_count:
                            best_count = c
                            out = q
            else:
                q = sp_row[dest]
                if free >> q & 1:
                    out = q
            if out < 0:
                if not scm or not free:
                    continue
                candidates = deflect_sets.get(free)
                if candidates is None:
                    candidates = tuple(q for q in range(out_deg) if free >> q & 1)
                    deflect_sets[free] = candidates
                n_cand = len(candidates)
                shift = shift_l[n_cand]
                cursor = int(cursors[j])
                if cursor == chunk:
                    word_row = draws._refill(j)[j]
                    cursor = 0
                else:
                    word_row = draws._words[j]
                while True:
                    r = int(word_row[cursor]) >> shift
                    cursor += 1
                    if r < n_cand:
                        break
                    if cursor == chunk:
                        word_row = draws._refill(j)[j]
                        cursor = 0
                cursors[j] = cursor
                counts[j] += 1
                out = candidates[r]
                mis.append(jb_m + mid)
            pops.append(jb_nf + sf[w])
            free &= ~(1 << out)
            if asp:
                se[out] += 1
            s_sidx.append(jb_nf + tgt_row[out])
            s_mid.append(mid)
            s_job.append(j)
        # free / local-port state is per cycle; nothing else to write back.

    if pops:
        pops_parts.append(np.array(pops, dtype=np.int64))
    if dels:
        dels_parts.append(np.array(dels, dtype=np.int64))
        deljob_parts.append(np.array(deljobs, dtype=np.int64))
    if mis:
        mis_parts.append(np.array(mis, dtype=np.int64))
    if s_sidx:
        ssidx_parts.append(np.array(s_sidx, dtype=np.int64))
        smid_parts.append(np.array(s_mid, dtype=np.int32))
        sjob_parts.append(np.array(s_job, dtype=np.int64))
    if asp:
        sent2[rows] = sent_l


def _collect_batched(
    st, messages, traffics, J, NFp, M, maxocc, ncycles_j, delivered_j,
    bypassed_j, hops_j, inj_cycle_flat, del_cycle_flat, mis_flat,
) -> list[SimulationResult]:
    """Fold the stacked per-job state into one SimulationResult per job."""
    n = st.n_nodes
    maxocc2 = maxocc.reshape(J, NFp)
    results: list[SimulationResult] = []
    fifo_base = st.fifo_base.tolist()
    fcount = st.fcount.tolist()
    inject_fid = st.inject_fid.tolist()
    for j, (arrays, traffic) in enumerate(zip(messages, traffics)):
        per_node_max = [
            int(maxocc2[j, fifo_base[node] : fifo_base[node] + fcount[node] - 1].max(initial=0))
            for node in range(n)
        ]
        max_injection = int(maxocc2[j, inject_fid].max(initial=0))
        total = arrays.total
        ncycles = int(ncycles_j[j])
        stats = MessageStatistics()
        stats.total_hops = int(hops_j[j])
        if total:
            lat = (
                del_cycle_flat[j * M : j * M + total]
                - inj_cycle_flat[j * M : j * M + total]
            )
            stats.count = total
            stats.total_latency = int(lat.sum(dtype=np.int64))
            stats.max_latency = int(lat.max(initial=0))
            stats.misrouted = int(np.count_nonzero(mis_flat[j * M : j * M + total]))
            stats._latencies.extend(lat.tolist())
        link_utilization = 0.0
        if ncycles > 0 and st.n_arcs > 0:
            link_utilization = int(hops_j[j]) / (st.n_arcs * ncycles)
        results.append(
            SimulationResult(
                ncycles=ncycles,
                total_messages=total,
                delivered_messages=int(delivered_j[j]),
                local_bypassed=int(bypassed_j[j]),
                max_fifo_occupancy=max(per_node_max) if per_node_max else 0,
                max_injection_occupancy=max_injection,
                per_node_max_fifo=per_node_max,
                statistics=stats,
                link_utilization=link_utilization,
                config_label=st.config.describe(),
                topology_label=st.topology.name,
                traffic_label=traffic.label,
            )
        )
    return results

"""JIT-able array-state twins of the NoC engines' scalar hot loops.

The two pure-Python scalar paths left in the NoC layer — the struct-of-arrays
engine's serve loop (:func:`repro.noc.engine._run_engine`) and the batched
kernel's small-round resume replay
(:func:`repro.noc.engine_batch._resume_python`) — spend their time in plain
interpreter bytecode over Python lists.  This module ports both to
*nopython-compatible* array style: every loop walks preallocated NumPy
arrays with integer indices, no lists, dicts, closures or exceptions, so the
exact same function body

* runs under the plain interpreter (slowly, but **bit-identically** — the
  differential suite pins it against the list-based originals on hosts
  without numba), and
* compiles unchanged through :func:`repro.backend.jit.maybe_compile` when
  the ``numba`` backend is selected, removing the interpreter from the last
  per-message hot paths.

Randomness stays bit-exact through a *word-block re-entry protocol*: the
scalar engines draw from ``random.Random(seed).getrandbits`` one call at a
time, which a compiled kernel cannot do.  Instead the kernels consume
pregenerated blocks of raw 32-bit Mersenne-Twister words (the same
``getrandbits(32 * N)`` little-endian decode as
:class:`repro.utils.rng.DeflectionStreams`, so the word sequence is the
scalar stream verbatim) and, when a block runs dry mid-draw, *suspend*:
they save their loop coordinates into a small ``state`` vector and return a
status code; the Python wrapper refills the block and re-enters, and the
kernel resumes at the exact draw it stopped on.  The same protocol handles
backing-buffer growth (the engine kernel reports "need room" at a cycle
boundary and the wrapper doubles the buffer).

Neither entry point imports numba: compilation is attempted lazily via
:func:`~repro.backend.jit.maybe_compile` on first use, and the interpreted
fallback is the same code object.
"""

from __future__ import annotations

import random

import numpy as np

from repro.backend.jit import maybe_compile
from repro.errors import SimulationError

__all__ = ["resume_replay", "run_engine_arrays"]

#: 32-bit MT words pregenerated per refill of the engine kernel's draw block.
#: Any size yields the same stream (blocks concatenate seamlessly); the first
#: block is only generated when a run actually draws, so DCM runs pay nothing.
_WORD_BLOCK = 4096

#: Status codes shared by both kernels.
_DONE = 0
_NEED_WORDS = 1
_MAX_CYCLES = 2
_NEED_ROOM = 3


# --------------------------------------------------------------------------- #
# Resume-replay kernel (twin of engine_batch._resume_python)
# --------------------------------------------------------------------------- #
def _resume_replay_kernel(
    rows, w0s, n, M, NFp, max_out, ap_k, asp, scm,
    nocc_r, sf_r, mid_r, dest_r, free_r, lf_r,
    sp_flat, ap_flat, ap_cnt, tgt_flat, out_deg, sent, shift_tab,
    words, cursors, counts, chunk,
    pops, dels, deljobs, mis, s_sidx, s_mid, s_job,
    out_counts, state,
):
    """Replay suspended (job, node) passes from gathered per-row columns.

    Returns ``-1`` when every pass has been replayed, or the job id whose
    word block ran dry mid-draw (the wrapper refills it and re-enters with
    ``state`` holding the suspension point).  Output appends persist across
    re-entries through the ``out_counts`` write cursors.
    """
    c_pop = out_counts[0]
    c_del = out_counts[1]
    c_mis = out_counts[2]
    c_s = out_counts[3]
    i0 = state[0] if state[0] >= 0 else 0
    for i in range(i0, rows.shape[0]):
        row = rows[i]
        j = row // n
        node = row - j * n
        if state[0] == i:
            w_start = state[1]
            free = state[2]
            lf = state[3] != 0
            state[0] = -1
        else:
            w_start = w0s[i]
            free = free_r[i]
            lf = lf_r[i]
        jb_m = j * M
        jb_nf = j * NFp
        spb = node * n
        tgtb = node * max_out
        odeg = out_deg[node]
        for w in range(w_start, nocc_r[i]):
            mid = mid_r[i, w]
            dest = dest_r[i, w]
            if dest == node:
                if lf:
                    pops[c_pop] = jb_nf + sf_r[i, w]
                    c_pop += 1
                    dels[c_del] = jb_m + mid
                    deljobs[c_del] = j
                    c_del += 1
                    lf = False
                continue
            out = -1
            if asp:
                best = -1
                base = (spb + dest) * ap_k
                for t in range(ap_cnt[spb + dest]):
                    q = ap_flat[base + t]
                    if (free >> q) & 1:
                        c = sent[row * max_out + q]
                        if best < 0 or c < best:
                            best = c
                            out = q
            else:
                q = sp_flat[spb + dest]
                if (free >> q) & 1:
                    out = q
            if out < 0:
                if (not scm) or free == 0:
                    continue
                n_cand = 0
                for q in range(odeg):
                    if (free >> q) & 1:
                        n_cand += 1
                shift = shift_tab[n_cand]
                while True:
                    cur = cursors[j]
                    if cur == chunk:
                        state[0] = i
                        state[1] = w
                        state[2] = free
                        state[3] = 1 if lf else 0
                        out_counts[0] = c_pop
                        out_counts[1] = c_del
                        out_counts[2] = c_mis
                        out_counts[3] = c_s
                        return j
                    r = words[j, cur] >> shift
                    cursors[j] = cur + 1
                    if r < n_cand:
                        break
                counts[j] += 1
                seen = -1
                for q in range(odeg):
                    if (free >> q) & 1:
                        seen += 1
                        if seen == r:
                            out = q
                            break
                mis[c_mis] = jb_m + mid
                c_mis += 1
            pops[c_pop] = jb_nf + sf_r[i, w]
            c_pop += 1
            free &= ~(1 << out)
            if asp:
                sent[row * max_out + out] += 1
            s_sidx[c_s] = jb_nf + tgt_flat[tgtb + out]
            s_mid[c_s] = mid
            s_job[c_s] = j
            c_s += 1
    out_counts[0] = c_pop
    out_counts[1] = c_del
    out_counts[2] = c_mis
    out_counts[3] = c_s
    return -1


def resume_replay(
    st, rows, w0s, n_occ, serve_fid, mid_t, dest_flat, free_arr,
    local_free_arr, sent, draws, M, NFp,
    pops_parts, dels_parts, deljob_parts, mis_parts,
    ssidx_parts, smid_parts, sjob_parts,
):
    """Array-state replay of suspended passes: signature-compatible with
    :func:`repro.noc.engine_batch._resume_python`, draw-for-draw identical.

    Gathers the per-row columns exactly as the list replay does, runs the
    nopython-style kernel (compiled when numba is importable), and appends
    the same pop / delivery / send scatters to the caller's part lists.
    """
    n = st.n_nodes
    jobs = rows // n
    k = rows.size
    mids = mid_t[:, rows]  # (wmax, k)
    nocc_r = n_occ[rows].astype(np.int64)
    sf_r = serve_fid[rows].astype(np.int64)
    mid_r = np.ascontiguousarray(mids.T).astype(np.int64)
    dest_r = np.ascontiguousarray(
        dest_flat[(jobs * M)[None, :] + mids].T
    ).astype(np.int64)
    free_r = free_arr[rows].astype(np.int64)
    lf_r = local_free_arr[rows].copy()
    tabs = _replay_tables(st)
    sp_flat, ap_flat, ap_cnt, tgt_flat, out_deg = tabs
    if sent is None:
        # DCM / SSP runs have no ASP counters; the kernel still needs an
        # array argument (never read: asp is False).
        sent_arr = _EMPTY_I64
    else:
        sent_arr = sent
    words = draws._words
    if words is None:
        words = _EMPTY_WORDS  # never read: every cursor sits at chunk
    rows64 = rows.astype(np.int64)
    w0s64 = w0s.astype(np.int64)
    cap = int((nocc_r - w0s64).sum())
    pops = np.empty(cap, dtype=np.int64)
    dels = np.empty(cap, dtype=np.int64)
    deljobs = np.empty(cap, dtype=np.int64)
    mis = np.empty(cap, dtype=np.int64)
    s_sidx = np.empty(cap, dtype=np.int64)
    s_mid = np.empty(cap, dtype=np.int64)
    s_job = np.empty(cap, dtype=np.int64)
    out_counts = np.zeros(4, dtype=np.int64)
    state = np.full(4, -1, dtype=np.int64)
    kernel = maybe_compile(_resume_replay_kernel)
    while True:
        job = kernel(
            rows64, w0s64,
            n, M, NFp, st.max_out, st.ap_k, st.asp_mode, st.scm_mode,
            nocc_r, sf_r, mid_r, dest_r, free_r, lf_r,
            sp_flat, ap_flat, ap_cnt, tgt_flat, out_deg, sent_arr,
            st.shift_tab, words, draws._cursors, draws.draw_counts,
            draws.chunk,
            pops, dels, deljobs, mis, s_sidx, s_mid, s_job,
            out_counts, state,
        )
        if job < 0:
            break
        words = draws._refill(int(job))
    c_pop, c_del, c_mis, c_s = (int(v) for v in out_counts)
    if c_pop:
        pops_parts.append(pops[:c_pop])
    if c_del:
        dels_parts.append(dels[:c_del])
        deljob_parts.append(deljobs[:c_del])
    if c_mis:
        mis_parts.append(mis[:c_mis])
    if c_s:
        ssidx_parts.append(s_sidx[:c_s])
        smid_parts.append(s_mid[:c_s].astype(np.int32))
        sjob_parts.append(s_job[:c_s])


_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_WORDS = np.zeros((0, 0), dtype=np.int64)


def _replay_tables(st):
    """Dense int64 routing lowerings for the replay kernel, cached on ``st``."""
    tabs = getattr(st, "_jit_replay_tables", None)
    if tabs is None:
        tabs = (
            st.sp_flat.astype(np.int64),
            np.ascontiguousarray(st.ap_flat).reshape(-1).astype(np.int64),
            st.ap_cnt_flat.astype(np.int64),
            st.tgt_flat.astype(np.int64),
            np.asarray(st.out_deg, dtype=np.int64),
        )
        st._jit_replay_tables = tabs
    return tabs


# --------------------------------------------------------------------------- #
# Full serve-loop engine kernel (twin of engine._run_engine)
# --------------------------------------------------------------------------- #
# state vector layout (all int64):
#   0 phase (0 = cycle boundary, 1 = mid-pass at a draw)   8 order length k
#   1 cycle          4 free-port mask    9 delivered      12 pending count
#   2 node           5 local_free       10 local_bypassed 13 touched count
#   3 w (order pos)  6 rr_served        11 total_hops     14 word cursor
#                    7 rr start                           15 max network len
def _serve_loop_kernel(
    n, total, max_out, ap_k, cap, rate, max_cycles,
    rr, asp, scm, unbounded,
    fifo_base, fcount, inject_fid, out_deg, tgt, sp, ap_flat, ap_cnt,
    full_mask, shift_tab,
    msg_dest, bypass, inj_cycle, del_cycle, misrouted,
    buf, heads, lens, occ, maxocc, sched, pending, touched,
    rr_ptr, sent, credit, inj_ptr, inj_end,
    ord_key, ord_fid, words, state,
):
    """One (re-)entry into the struct-of-arrays serve loop.

    Runs cycles until every message lands (status 0), the deflection word
    block runs dry mid-draw (1), ``max_cycles`` is exceeded (2) or a network
    FIFO's backing row could overflow next cycle (3).  All loop coordinates
    live in ``state`` so a suspended call resumes at the exact draw.
    """
    L = buf.shape[1]
    W = words.shape[0]
    cycle = state[1]
    delivered = state[9]
    local_bypassed = state[10]
    total_hops = state[11]
    n_pend = state[12]
    n_touch = state[13]
    wcur = state[14]
    maxlen = state[15]
    resume_node = state[2] if state[0] == 1 else -1

    while delivered < total:
        if resume_node < 0:
            if cycle > max_cycles:
                state[0] = 0
                state[1] = cycle
                state[9] = delivered
                return _MAX_CYCLES
            if maxlen + 1 > L:
                state[0] = 0
                state[1] = cycle
                state[9] = delivered
                state[10] = local_bypassed
                state[11] = total_hops
                state[12] = n_pend
                state[13] = n_touch
                state[14] = wcur
                state[15] = maxlen
                return _NEED_ROOM

            # 1. Link arrivals scheduled on the previous cycle, in send order.
            for p in range(n_pend):
                f = pending[p]
                o = occ[f] + 1
                occ[f] = o
                if o > maxocc[f]:
                    maxocc[f] = o
            n_pend = 0
            for p in range(n_touch):
                sched[touched[p]] = 0
            n_touch = 0
            node0 = 0
        else:
            node0 = resume_node

        # 2. Crossbar pass on every node, in node order.
        for node in range(node0, n):
            fb = fifo_base[node]
            fc = fcount[node]
            if node == resume_node:
                w0 = state[3]
                free = state[4]
                lf = state[5] != 0
                rr_served = state[6] != 0
                start = state[7]
                k = state[8]
                resume_node = -1
            else:
                w0 = 0
                start = rr_ptr[node]
                if rr:
                    k = fc
                else:
                    # Longest FIFO first, ties by fid: stable insertion sort
                    # of the packed key (fid - occ * 2**20), exactly the
                    # scalar engine's ascending (-occ, fid) order.
                    k = 0
                    for t in range(fc):
                        f = fb + t
                        o = occ[f]
                        if o != 0:
                            key = f - (o << 20)
                            p = k
                            while p > 0 and ord_key[p - 1] > key:
                                ord_key[p] = ord_key[p - 1]
                                ord_fid[p] = ord_fid[p - 1]
                                p -= 1
                            ord_key[p] = key
                            ord_fid[p] = f
                            k += 1
                    if k == 0:
                        continue
                if unbounded:
                    free = full_mask[node]
                else:
                    free = 0
                    for q in range(out_deg[node]):
                        t_ = tgt[node, q]
                        if occ[t_] + sched[t_] < cap:
                            free |= 1 << q
                lf = True
                rr_served = False

            for w in range(w0, k):
                if rr:
                    fid = fb + (start + w) % fc
                    if occ[fid] == 0:
                        continue
                    rr_served = True
                else:
                    fid = ord_fid[w]
                mid = buf[fid, heads[fid]]
                dest = msg_dest[mid]
                if dest == node:
                    if lf:
                        heads[fid] += 1
                        occ[fid] -= 1
                        del_cycle[mid] = cycle
                        delivered += 1
                        lf = False
                    continue
                out = -1
                if asp:
                    best = -1
                    base = (node * n + dest) * ap_k
                    for t in range(ap_cnt[node * n + dest]):
                        q = ap_flat[base + t]
                        if (free >> q) & 1:
                            c = sent[node, q]
                            if best < 0 or c < best:
                                best = c
                                out = q
                else:
                    q = sp[node, dest]
                    if (free >> q) & 1:
                        out = q
                deflected = False
                if out < 0:
                    if (not scm) or free == 0:
                        continue
                    n_cand = 0
                    for q in range(out_deg[node]):
                        if (free >> q) & 1:
                            n_cand += 1
                    shift = shift_tab[n_cand]
                    while True:
                        if wcur == W:
                            state[0] = 1
                            state[1] = cycle
                            state[2] = node
                            state[3] = w
                            state[4] = free
                            state[5] = 1 if lf else 0
                            state[6] = 1 if rr_served else 0
                            state[7] = start
                            state[8] = k
                            state[9] = delivered
                            state[10] = local_bypassed
                            state[11] = total_hops
                            state[12] = n_pend
                            state[13] = n_touch
                            state[14] = wcur
                            state[15] = maxlen
                            return _NEED_WORDS
                        r = words[wcur] >> shift
                        wcur += 1
                        if r < n_cand:
                            break
                    seen = -1
                    for q in range(out_deg[node]):
                        if (free >> q) & 1:
                            seen += 1
                            if seen == r:
                                out = q
                                break
                    deflected = True
                heads[fid] += 1
                occ[fid] -= 1
                free &= ~(1 << out)
                sent[node, out] += 1
                t_ = tgt[node, out]
                if not unbounded:
                    if sched[t_] == 0:
                        touched[n_touch] = t_
                        n_touch += 1
                    sched[t_] += 1
                total_hops += 1
                if deflected:
                    misrouted[mid] = 1
                buf[t_, lens[t_]] = mid
                lens[t_] += 1
                if lens[t_] > maxlen:
                    maxlen = lens[t_]
                pending[n_pend] = t_
                n_pend += 1
            if rr and rr_served:
                rr_ptr[node] = (start + 1) % fc

        # 3. PE injection at rate R; bypass messages deliver immediately.
        for node in range(n):
            ptr = inj_ptr[node]
            end = inj_end[node]
            if ptr >= end:
                continue
            c = credit[node] + rate
            ifid = inject_fid[node]
            pushed = 0
            while ptr < end:
                if bypass[ptr]:
                    inj_cycle[ptr] = cycle
                    del_cycle[ptr] = cycle
                    delivered += 1
                    local_bypassed += 1
                    ptr += 1
                    continue
                if c < 1.0 or occ[ifid] + pushed >= cap:
                    break
                inj_cycle[ptr] = cycle
                c -= 1.0
                buf[ifid, lens[ifid]] = ptr
                lens[ifid] += 1
                pushed += 1
                ptr += 1
            if pushed:
                o = occ[ifid] + pushed
                occ[ifid] = o
                if o > maxocc[ifid]:
                    maxocc[ifid] = o
            inj_ptr[node] = ptr
            credit[node] = c
        cycle += 1

    state[0] = 0
    state[1] = cycle
    state[9] = delivered
    state[10] = local_bypassed
    state[11] = total_hops
    state[14] = wcur
    return _DONE


def _engine_tables(st):
    """Dense int64 lowerings of a scalar ``_StaticState``, cached on it."""
    tabs = getattr(st, "_jit_engine_tables", None)
    if tabs is not None:
        return tabs
    n = st.n_nodes
    max_out = max(max(st.out_deg, default=0), 1)
    tgt = np.zeros((n, max_out), dtype=np.int64)
    for node in range(n):
        for q in range(st.out_deg[node]):
            tgt[node, q] = st.out_target_fid[node][q]
    sp = np.asarray(st.single_port, dtype=np.int64)
    ap_k = max(
        (len(ports) for row in st.all_ports for ports in row), default=1
    )
    ap_k = max(ap_k, 1)
    ap_flat = np.zeros(n * n * ap_k, dtype=np.int64)
    ap_cnt = np.zeros(n * n, dtype=np.int64)
    for node in range(n):
        for dest in range(n):
            ports = st.all_ports[node][dest]
            ap_cnt[node * n + dest] = len(ports)
            base = (node * n + dest) * ap_k
            for t, q in enumerate(ports):
                ap_flat[base + t] = q
    shift_tab = np.array(
        [32] + [32 - k.bit_length() for k in range(1, max_out + 1)],
        dtype=np.int64,
    )
    tabs = (
        max_out,
        ap_k,
        np.asarray(st.fifo_base, dtype=np.int64),
        np.asarray(
            [st.in_deg[node] + 1 for node in range(n)], dtype=np.int64
        ),
        np.asarray(st.inject_fid, dtype=np.int64),
        np.asarray(st.out_deg, dtype=np.int64),
        tgt,
        sp,
        ap_flat,
        ap_cnt,
        np.asarray(st.full_masks, dtype=np.int64),
        shift_tab,
    )
    st._jit_engine_tables = tabs
    return tabs


def run_engine_arrays(st, messages, traffic_label, seed, max_cycles):
    """Array-state run of one message-passing phase, cycle-exact with
    :func:`repro.noc.engine._run_engine` for any (static state, traffic, seed).

    Drives :func:`_serve_loop_kernel` (compiled when numba is importable,
    interpreted otherwise) through the word-refill / buffer-grow re-entry
    protocol and folds the results through the scalar engine's own
    ``_collect_result``.
    """
    from repro.noc.engine import _collect_result

    (
        max_out, ap_k, fifo_base, fcount, inject_fid, out_deg, tgt, sp,
        ap_flat, ap_cnt, full_mask, shift_tab,
    ) = _engine_tables(st)
    n = st.n_nodes
    n_fifos = st.n_fifos
    if n_fifos >= 1 << 20:
        raise SimulationError(
            "JIT serve loop supports at most 2**20 FIFOs (order-key packing)"
        )
    total = messages.total
    msg_dest = messages.dest.astype(np.int64)
    node_offset = messages.node_offset.astype(np.int64)
    if st.route_local:
        bypass = np.zeros(total, dtype=bool)
    else:
        bypass = messages.dest == messages.source
    inj_cycle = np.zeros(total, dtype=np.int64)
    del_cycle = np.full(total, -1, dtype=np.int64)
    misrouted = np.zeros(total, dtype=np.int64)

    # A node's injection FIFO receives each of its messages at most once, so
    # rows sized to the largest per-node count never overflow from injection;
    # network rows gain at most one entry per cycle and grow on demand
    # through the _NEED_ROOM protocol.
    counts = np.diff(node_offset)
    L = max(int(counts.max(initial=0)), 16)
    buf = np.zeros((n_fifos, L), dtype=np.int64)
    heads = np.zeros(n_fifos, dtype=np.int64)
    lens = np.zeros(n_fifos, dtype=np.int64)
    occ = np.zeros(n_fifos, dtype=np.int64)
    maxocc = np.zeros(n_fifos, dtype=np.int64)
    sched = np.zeros(n_fifos, dtype=np.int64)
    n_arcs = max(int(np.asarray(st.out_deg).sum()), 1)
    pending = np.zeros(n_arcs, dtype=np.int64)
    touched = np.zeros(n_arcs, dtype=np.int64)
    rr_ptr = np.zeros(n, dtype=np.int64)
    sent = np.zeros((n, max_out), dtype=np.int64)
    credit = np.zeros(n, dtype=np.float64)
    inj_ptr = node_offset[:-1].copy()
    inj_end = node_offset[1:].copy()
    fmax = int(fcount.max(initial=1))
    ord_key = np.zeros(fmax, dtype=np.int64)
    ord_fid = np.zeros(fmax, dtype=np.int64)

    # Deflection words are generated lazily: the kernel starts with an empty
    # block, and the first _NEED_WORDS return materializes the stream.
    rnd = random.Random(seed)
    words = np.zeros(0, dtype=np.int64)
    state = np.zeros(16, dtype=np.int64)

    kernel = maybe_compile(_serve_loop_kernel)
    unbounded = st.capacity > total
    while True:
        status = kernel(
            n, total, max_out, ap_k, st.capacity, st.injection_rate,
            max_cycles, st.rr_mode, st.asp_mode, st.scm_mode, unbounded,
            fifo_base, fcount, inject_fid, out_deg, tgt, sp, ap_flat, ap_cnt,
            full_mask, shift_tab,
            msg_dest, bypass, inj_cycle, del_cycle, misrouted,
            buf, heads, lens, occ, maxocc, sched, pending, touched,
            rr_ptr, sent, credit, inj_ptr, inj_end,
            ord_key, ord_fid, words, state,
        )
        if status == _DONE:
            break
        if status == _NEED_WORDS:
            block = rnd.getrandbits(32 * _WORD_BLOCK)
            raw = block.to_bytes(4 * _WORD_BLOCK, "little")
            words = np.frombuffer(raw, dtype="<u4").astype(np.int64)
            state[14] = 0
        elif status == _NEED_ROOM:
            grown = np.zeros((n_fifos, 2 * L), dtype=np.int64)
            grown[:, :L] = buf
            buf = grown
            L = 2 * L
        else:  # _MAX_CYCLES
            raise SimulationError(
                f"simulation exceeded {max_cycles} cycles with "
                f"{total - int(state[9])} messages still in flight"
            )

    return _collect_result(
        st, messages, traffic_label, int(state[1]), int(state[9]),
        int(state[10]), maxocc.tolist(), inj_cycle.tolist(),
        del_cycle.tolist(), int(state[11]), misrouted.tolist(),
    )

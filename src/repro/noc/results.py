"""Measurement record of one simulated message-passing phase.

:class:`SimulationResult` is produced by both NoC simulators — the
struct-of-arrays cycle engine (:mod:`repro.noc.engine`) and the per-object
reference simulator (:mod:`repro.noc.simulator`) — and consumed by the
design-flow, analysis and area layers.  It lives in its own module so the
engine and the facade can share it without circular imports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.message import MessageStatistics


@dataclass
class SimulationResult:
    """Measurements of one simulated message-passing phase."""

    ncycles: int
    total_messages: int
    delivered_messages: int
    local_bypassed: int
    max_fifo_occupancy: int
    max_injection_occupancy: int
    per_node_max_fifo: list[int] = field(default_factory=list)
    statistics: MessageStatistics = field(default_factory=MessageStatistics)
    link_utilization: float = 0.0
    config_label: str = ""
    topology_label: str = ""
    traffic_label: str = ""

    @property
    def all_delivered(self) -> bool:
        """True when every message reached its destination."""
        return self.delivered_messages == self.total_messages

    def describe(self) -> str:
        """One-line summary used by reports and examples."""
        return (
            f"{self.topology_label} | {self.config_label} | ncycles={self.ncycles} "
            f"max_fifo={self.max_fifo_occupancy} mean_lat={self.statistics.mean_latency:.1f}"
        )

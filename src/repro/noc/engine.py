"""Struct-of-arrays NoC cycle engine and multi-point sweep driver.

The per-object reference simulator (:class:`repro.noc.simulator.ReferenceNocSimulator`)
walks Python ``RouterNode`` / ``MessageFifo`` / ``Message`` objects one cycle at
a time — faithful, but the last pure-Python per-message hot path of the
reproduction.  :class:`BatchNocSimulator` replaces those object graphs with a
struct-of-arrays state:

* **messages** live in flat arrays (NumPy ``source`` / ``dest`` /
  ``memory_location`` / offset columns in :class:`MessageArrays`, flat
  parallel injection/delivery-cycle and misroute columns during a run), one
  slot per message of the :class:`~repro.noc.traffic.TrafficPattern`;
* **FIFOs** are append-only ring views — one flat id per (node, input port)
  pair, a backing list of message indices and a head cursor, so push/pop are
  O(1) integer moves with no per-message allocation;
* **routing** uses the dense next-hop matrices exposed by
  :class:`~repro.noc.routing.RoutingTables` and the dense port-target wiring of
  :class:`~repro.noc.topologies.Topology` instead of per-hop dict lookups.

The engine is pinned *cycle-exact* against the reference simulator: for any
(topology, configuration, traffic, seed) it reproduces the same ``ncycles``,
delivered counts, per-node maximum FIFO occupancies, hop totals and SCM
deflection decisions (it consumes the shared deflection RNG in the very same
order).  ``tests/test_noc_engine.py`` enforces this differentially on
randomized configurations.

The arbitration of the paper's routing policies is inherently sequential
within a cycle (ports contend in serving order, backpressure sees earlier
nodes' pops), so the inner loop advances flat integer state rather than
calling NumPy per port — on the 8–36-node networks of the paper that is
several times faster than both per-element ``ndarray`` indexing and the
object simulator.  The NumPy side of the layout pays off at the boundaries:
traffic is ingested, and statistics (latencies, hops, misroutes) are reduced,
as single vectorized array operations.

Multi-point sweeps live one layer up: :func:`repro.noc.sweep.run_noc_sweep`
groups jobs by (graph, configuration) and dispatches each group to the
job-batched kernel (:mod:`repro.noc.engine_batch`) or to this scalar engine,
whichever its measured cost model projects faster for the group's size and
collision policy, sharing precomputed topologies and routing tables across
all points that use the same graph.  This engine remains the fastest path
for small groups (and the kernel's own fallback for bounded-capacity
configurations), so its per-run cost is as load-bearing as the kernel's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.backend import BackendLike, resolve
from repro.errors import SimulationError
from repro.noc.config import CollisionPolicy, NocConfiguration, RoutingAlgorithm
from repro.noc.message import MessageStatistics
from repro.noc.results import SimulationResult
from repro.noc.routing import RoutingTables, build_routing_tables
from repro.noc.topologies import Topology
from repro.noc.traffic import TrafficPattern


@dataclass(frozen=True)
class MessageArrays:
    """Flat struct-of-arrays view of one traffic pattern.

    Message ``m`` of node ``n`` occupies slot ``node_offset[n] + m``; all
    per-message attributes are plain ``(total,)`` NumPy arrays.
    """

    source: np.ndarray
    dest: np.ndarray
    memory_location: np.ndarray
    node_offset: np.ndarray

    @property
    def total(self) -> int:
        """Total number of messages across all nodes."""
        return int(self.dest.size)

    @classmethod
    def from_traffic(cls, traffic: TrafficPattern) -> "MessageArrays":
        """Flatten a traffic pattern into per-message arrays."""
        counts = traffic.messages_per_node()
        node_offset = np.zeros(traffic.n_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=node_offset[1:])
        total = int(node_offset[-1])
        source = np.repeat(np.arange(traffic.n_nodes, dtype=np.int64), counts)
        dest = np.empty(total, dtype=np.int64)
        memory_location = np.empty(total, dtype=np.int64)
        for node, node_traffic in enumerate(traffic.per_node):
            lo, hi = node_offset[node], node_offset[node + 1]
            dest[lo:hi] = node_traffic.destinations
            memory_location[lo:hi] = node_traffic.memory_locations
        return cls(
            source=source,
            dest=dest,
            memory_location=memory_location,
            node_offset=node_offset,
        )


class BatchNocSimulator:
    """Struct-of-arrays cycle engine for the message-passing phase.

    Drop-in computational replacement for the reference object simulator: same
    constructor signature, same :class:`~repro.noc.results.SimulationResult`,
    cycle-exact outputs.  ``NocSimulator`` delegates here at sweep size 1; use
    :func:`repro.noc.sweep.run_noc_sweep` to amortize topology/routing-table
    construction over many sweep points.

    Parameters
    ----------
    topology:
        The NoC topology.
    config:
        Simulation parameters (routing algorithm, R, RL, DCM/SCM, FIFO size).
    routing_tables:
        Optional precomputed tables (recomputed from the topology if omitted).
    seed:
        Seed for the SCM deflection randomness.
    max_cycles:
        Hard safety bound on the simulated cycle count.
    backend:
        Array-backend override (:func:`repro.backend.resolve` semantics).
        A backend with ``jit=True`` (the ``numba`` backend, or any
        :class:`~repro.backend.ArrayBackend` constructed with that flag)
        routes runs through the JIT-able array-state serve loop of
        :mod:`repro.noc.engine_jit`, which is cycle-exact with the list
        engine; any other backend keeps the plain-Python loop.
    """

    def __init__(
        self,
        topology: Topology,
        config: NocConfiguration,
        routing_tables: RoutingTables | None = None,
        seed: int = 0,
        max_cycles: int = 200_000,
        backend: BackendLike = None,
    ):
        if max_cycles <= 0:
            raise SimulationError(f"max_cycles must be positive, got {max_cycles}")
        self.topology = topology
        self.config = config
        self.tables = (
            routing_tables if routing_tables is not None else build_routing_tables(topology)
        )
        if self.tables.topology is not topology:
            raise SimulationError("routing tables were built for a different topology")
        self.seed = seed
        self.max_cycles = max_cycles
        self.backend = backend
        self._static = _StaticState(topology, config, self.tables)

    def run(self, traffic: TrafficPattern, seed: int | None = None) -> SimulationResult:
        """Simulate one message-passing phase and return its measurements.

        ``seed`` overrides the constructor seed for this run only, so a sweep
        driver can reuse one engine (and its precomputed static state) across
        many seeded points of the same (topology, configuration) pair.
        """
        if traffic.n_nodes != self.topology.n_nodes:
            raise SimulationError(
                f"traffic references {traffic.n_nodes} nodes but the topology has "
                f"{self.topology.n_nodes}"
            )
        run_seed = self.seed if seed is None else seed
        if resolve(self.backend).jit:
            from repro.noc.engine_jit import run_engine_arrays

            return run_engine_arrays(
                self._static, MessageArrays.from_traffic(traffic),
                traffic.label, run_seed, self.max_cycles,
            )
        return _run_engine(
            self._static, MessageArrays.from_traffic(traffic), traffic.label,
            run_seed, self.max_cycles,
        )


# --------------------------------------------------------------------------- #
# Engine internals
# --------------------------------------------------------------------------- #
class _StaticState:
    """Per-(topology, config) state reusable across runs: dense wiring and
    routing lookups lowered to plain Python lists for the scalar hot loop."""

    def __init__(self, topology: Topology, config: NocConfiguration, tables: RoutingTables):
        n = topology.n_nodes
        self.n_nodes = n
        self.n_arcs = topology.n_arcs
        self.in_deg: list[int] = topology.in_degrees.tolist()
        self.out_deg: list[int] = topology.out_degrees.tolist()

        # Flat FIFO ids: per node its network input ports then its injection
        # port, so fid = fifo_base[n] + port and inject_fid[n] closes the node.
        self.fifo_base: list[int] = []
        fid = 0
        for node in range(n):
            self.fifo_base.append(fid)
            fid += self.in_deg[node] + 1
        self.n_fifos = fid
        self.inject_fid: list[int] = [
            self.fifo_base[node] + self.in_deg[node] for node in range(n)
        ]

        # (node, out port) -> flat fid of the downstream input FIFO.
        dest_node = topology.out_neighbor_matrix
        dest_port = topology.dest_input_port_matrix
        self.out_target_fid: list[list[int]] = [
            [
                self.fifo_base[int(dest_node[node, port])] + int(dest_port[node, port])
                for port in range(self.out_deg[node])
            ]
            for node in range(n)
        ]

        # Static iteration ranges: flat fids of each node's input FIFOs
        # (network ports then injection port) and output-port indices.
        self.fid_ranges: list[tuple[int, ...]] = [
            tuple(
                range(self.fifo_base[node], self.fifo_base[node] + self.in_deg[node] + 1)
            )
            for node in range(n)
        ]
        self.out_ranges: list[tuple[int, ...]] = [
            tuple(range(self.out_deg[node])) for node in range(n)
        ]
        # All-output-ports-free bitmask per node (for runs where backpressure
        # provably cannot bind).
        self.full_masks: list[int] = [(1 << self.out_deg[node]) - 1 for node in range(n)]

        # RR serving: every rotation of a node's input fids, prebuilt as the
        # (key, fid) pairs the serve loop consumes, indexed by the pointer.
        self.rr_orders: list[list[tuple[tuple[int, int], ...]]] = []
        if config.routing_algorithm is RoutingAlgorithm.SSP_RR:
            self.rr_orders = [
                [
                    tuple((0, f) for f in fids[s:] + fids[:s])
                    for s in range(len(fids))
                ]
                for fids in self.fid_ranges
            ]

        # Routing lookups: dense SSP matrix and per-pair ASP port tuples.
        self.single_port: list[list[int]] = tables.next_port_matrix.tolist()
        self.all_ports: tuple[tuple[tuple[int, ...], ...], ...] = tables.next_ports

        self.rr_mode = config.routing_algorithm is RoutingAlgorithm.SSP_RR
        self.asp_mode = config.routing_algorithm.uses_all_paths
        self.scm_mode = config.collision_policy is CollisionPolicy.SCM
        self.injection_rate = config.injection_rate
        self.route_local = config.route_local
        self.capacity = config.fifo_capacity
        self.config = config
        self.topology = topology


def _run_engine(
    st: _StaticState,
    messages: MessageArrays,
    traffic_label: str,
    seed: int,
    max_cycles: int,
) -> SimulationResult:
    """Advance the struct-of-arrays state cycle by cycle until all messages land."""
    n = st.n_nodes
    cap = st.capacity
    rate = st.injection_rate
    route_local = st.route_local
    rr_mode, asp_mode, scm_mode = st.rr_mode, st.asp_mode, st.scm_mode
    out_deg = st.out_deg
    inject_fid = st.inject_fid
    out_target_fid = st.out_target_fid
    single_port, all_ports = st.single_port, st.all_ports

    # Same deflection stream as the reference simulator: one shared
    # random.Random consumed in node/serving order through the bounded-draw
    # rejection procedure of repro.utils.rng.bounded_draw, inlined below.
    getrandbits = random.Random(seed).getrandbits

    # Backpressure can only ever bind when some FIFO could fill up; with the
    # default deep capacities (cap > total messages) that is impossible, so
    # the per-cycle downstream-room checks and send-scheduling bookkeeping are
    # skipped wholesale and every output port starts each pass free.
    unbounded = st.capacity > messages.total

    # Working copies of the flat message attributes as Python lists: the
    # arbitration loop touches one scalar at a time and plain list indexing is
    # several times faster than ndarray item access; results are folded back
    # into NumPy arrays for the vectorized statistics reduction at the end.
    total = messages.total
    msg_dest: list[int] = messages.dest.tolist()
    node_offset: list[int] = messages.node_offset.tolist()
    inj_cycle = [0] * total
    del_cycle = [-1] * total
    misrouted = [0] * total
    total_hops = 0
    # Which messages bypass the network entirely (RL = 0 local messages) —
    # a pure function of the traffic, computed vectorized up front.
    if route_local:
        bypass_l = [False] * total
    else:
        bypass_l = (messages.dest == messages.source).tolist()

    # FIFO state: append-only backing lists with head cursors; ``occ`` is the
    # incrementally maintained occupancy (len(buf) - head) of every FIFO.
    bufs: list[list[int]] = [[] for _ in range(st.n_fifos)]
    heads = [0] * st.n_fifos
    occ = [0] * st.n_fifos
    maxocc = [0] * st.n_fifos

    # Per-node arbitration / injection state.
    rr_ptr = [0] * n
    port_sent = [[0] * max(out_deg[node], 1) for node in range(n)]
    inj_ptr = node_offset[:-1]  # next message slot to inject, per node
    inj_end = node_offset[1:]
    credit = [0.0] * n
    node_range = range(n)
    # One tuple per node bundling the per-node views the crossbar pass needs,
    # so each visit costs a single index + unpack instead of six lookups.
    # (A node's first fid doubles as its port-0 fid, so the RR rotation pivot
    # is fids[0] + start and the port count is len(fids).)
    node_ctx = [
        (
            st.fid_ranges[node],
            out_target_fid[node],
            port_sent[node],
            single_port[node],
            all_ports[node],
            st.full_masks[node],
        )
        for node in node_range
    ]
    out_ranges = st.out_ranges
    rr_orders = st.rr_orders
    # Bit lengths for the deflection rejection draw, indexed by candidate count.
    bitlen = [0] + [k.bit_length() for k in range(1, max(out_deg, default=0) + 1)]

    delivered = 0
    local_bypassed = 0
    # Memo: free-port bitmask -> ascending tuple of set port indices (the SCM
    # deflection candidate list, reference's sorted(free_ports)).
    deflect_sets: dict[int, tuple[int, ...]] = {}
    # Messages sent this cycle are appended to the downstream backing list
    # immediately (cheaper than staging (fid, mid) pairs) but stay invisible —
    # beyond the occupancy cursor — until the next cycle's arrival phase
    # acknowledges them fid by fid, in send order.
    pending: list[int] = []
    sched = [0] * st.n_fifos
    touched: list[int] = []

    cycle = 0
    while delivered < total:
        if cycle > max_cycles:
            raise SimulationError(
                f"simulation exceeded {max_cycles} cycles with "
                f"{total - delivered} messages still in flight"
            )

        # 1. Link arrivals scheduled on the previous cycle, in send order.
        for fid in pending:
            o = occ[fid] + 1
            occ[fid] = o
            if o > maxocc[fid]:
                maxocc[fid] = o
        pending = []
        for fid in touched:
            sched[fid] = 0
        touched = []

        # 2. Crossbar pass on every node, in node order (backpressure sees
        # earlier nodes' pops and sends exactly as in the reference simulator).
        for node in node_range:
            fids, targets, sent, sp_row, ap_row, fmask = node_ctx[node]
            if rr_mode:
                # Rotating priority: the prebuilt rotation lists every port
                # starting at the pointer; empty FIFOs are skipped in the
                # serve loop itself (a FIFO cannot become occupied mid-pass).
                start = rr_ptr[node]
                order = rr_orders[node][start]
            else:
                # Longest FIFO first, ties by port index: sort (-occupancy,
                # fid); fids ascend with the port index within a node.  Most
                # passes contend between two FIFOs, where one compare beats a
                # sort call.
                order = [(-o, f) for f in fids if (o := occ[f])]
                k = len(order)
                if not k:
                    continue
                if k == 2:
                    if order[0] > order[1]:
                        order[0], order[1] = order[1], order[0]
                elif k > 2:
                    order.sort()

            # Free output ports as a bitmask: bit q set when the downstream
            # FIFO can still accept this cycle's scheduled sends plus one.
            if unbounded:
                free = fmask
            else:
                free = 0
                for q in out_ranges[node]:
                    t = targets[q]
                    if occ[t] + sched[t] < cap:
                        free |= 1 << q
            local_free = True
            rr_served = False

            for _, fid in order:
                if rr_mode:
                    if not occ[fid]:
                        continue
                    rr_served = True
                mid = bufs[fid][heads[fid]]
                dest = msg_dest[mid]
                if dest == node:
                    if local_free:
                        heads[fid] += 1
                        occ[fid] -= 1
                        del_cycle[mid] = cycle
                        delivered += 1
                        local_free = False
                    # A losing locally destined message simply waits.
                    continue
                out = -1
                if asp_mode:
                    # Traffic spreading: the free allowed port with the fewest
                    # sends so far; ties fall to the lowest port index.
                    best_count = -1
                    for q in ap_row[dest]:
                        if free >> q & 1:
                            c = sent[q]
                            if best_count < 0 or c < best_count:
                                best_count = c
                                out = q
                else:
                    q = sp_row[dest]
                    if free >> q & 1:
                        out = q
                deflected = False
                if out < 0:
                    if not scm_mode or not free:
                        continue  # DCM (or no free port at all): the message waits.
                    candidates = deflect_sets.get(free)
                    if candidates is None:
                        candidates = tuple(
                            q for q in out_ranges[node] if free >> q & 1
                        )
                        deflect_sets[free] = candidates
                    # Inlined bounded_draw over the shared getrandbits stream.
                    n_cand = len(candidates)
                    k = bitlen[n_cand]
                    r = getrandbits(k)
                    while r >= n_cand:
                        r = getrandbits(k)
                    out = candidates[r]
                    deflected = True
                heads[fid] += 1
                occ[fid] -= 1
                free &= ~(1 << out)
                sent[out] += 1
                t = targets[out]
                if not unbounded:
                    if sched[t] == 0:
                        touched.append(t)
                    sched[t] += 1
                total_hops += 1
                if deflected:
                    misrouted[mid] = 1
                bufs[t].append(mid)
                pending.append(t)
            if rr_served:
                # The pointer only advances on cycles where the node had at
                # least one occupied input FIFO, as in the reference.
                rr_ptr[node] = (start + 1) % len(fids)

        # 3. PE injection at rate R; local messages bypass the network when
        # RL = 0 and consume neither credit nor FIFO space.
        for node in node_range:
            ptr = inj_ptr[node]
            end = inj_end[node]
            if ptr >= end:
                continue
            c = credit[node] + rate
            ifid = inject_fid[node]
            ibuf = bufs[ifid]
            pushed = 0
            while ptr < end:
                bypass = bypass_l[ptr]
                if not bypass and (c < 1.0 or occ[ifid] + pushed >= cap):
                    break
                inj_cycle[ptr] = cycle
                if bypass:
                    del_cycle[ptr] = cycle
                    delivered += 1
                    local_bypassed += 1
                else:
                    c -= 1.0
                    ibuf.append(ptr)
                    pushed += 1
                ptr += 1
            if pushed:
                # Occupancy only grows during injection, so the post-loop
                # occupancy is the phase's high-water mark.
                o = occ[ifid] + pushed
                occ[ifid] = o
                if o > maxocc[ifid]:
                    maxocc[ifid] = o
            inj_ptr[node] = ptr
            credit[node] = c
        cycle += 1

    return _collect_result(
        st, messages, traffic_label, cycle, delivered, local_bypassed,
        maxocc, inj_cycle, del_cycle, total_hops, misrouted,
    )


def _collect_result(
    st: _StaticState,
    messages: MessageArrays,
    traffic_label: str,
    cycle: int,
    delivered: int,
    local_bypassed: int,
    maxocc: list[int],
    inj_cycle: list[int],
    del_cycle: list[int],
    total_hops: int,
    misrouted: list[int],
) -> SimulationResult:
    """Fold the flat per-message state into a SimulationResult (vectorized)."""
    n = st.n_nodes
    per_node_max = [
        max(maxocc[st.fifo_base[node] : st.fifo_base[node] + st.in_deg[node]], default=0)
        for node in range(n)
    ]
    max_injection = max(maxocc[st.inject_fid[node]] for node in range(n))

    total = messages.total
    stats = MessageStatistics()
    stats.total_hops = total_hops
    if total:
        latencies = np.asarray(del_cycle, dtype=np.int64) - np.asarray(
            inj_cycle, dtype=np.int64
        )
        stats.count = total
        stats.total_latency = int(latencies.sum())
        stats.max_latency = int(latencies.max(initial=0))
        stats.misrouted = int(np.count_nonzero(np.asarray(misrouted, dtype=np.int64)))
        stats._latencies.extend(latencies.tolist())

    link_utilization = 0.0
    if cycle > 0 and st.n_arcs > 0:
        # Every hop ever taken occupies one arc for one cycle, so the hop
        # total is exactly the reference's running link-usage counter.
        link_utilization = total_hops / (st.n_arcs * cycle)
    return SimulationResult(
        ncycles=cycle,
        total_messages=total,
        delivered_messages=delivered,
        local_bypassed=local_bypassed,
        max_fifo_occupancy=max(per_node_max) if per_node_max else 0,
        max_injection_occupancy=max_injection,
        per_node_max_fifo=per_node_max,
        statistics=stats,
        link_utilization=link_utilization,
        config_label=st.config.describe(),
        topology_label=st.topology.name,
        traffic_label=traffic_label,
    )

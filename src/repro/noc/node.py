"""The NoC node of paper Fig. 1: routing element, PE injection port and memory port.

Each node couples a Processing Element (PE) to the network through a Routing
Element (RE) built around an ``F x F`` crossbar: ``D`` input FIFOs fed by the
incoming network links plus one injection FIFO fed by the local PE, and ``D``
output registers driving the outgoing links plus one local output delivering
messages to the PE memory.

The routing / arbitration policies of the paper are implemented here:

* serving order of contending input FIFOs — round-robin (RR) or longest FIFO
  first (FL);
* output-port choice — single shortest path (SSP) or all shortest paths with
  traffic spreading (ASP-FT, which keeps a per-port sent-message statistic);
* collision management — DCM (losers wait) or SCM (losers are deflected to a
  free output port).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.noc.config import CollisionPolicy, NocConfiguration, RoutingAlgorithm
from repro.noc.fifo import MessageFifo
from repro.noc.message import Message
from repro.noc.routing import RoutingTables
from repro.utils.rng import bounded_draw


@dataclass
class RoutingDecision:
    """Outcome of one crossbar pass for one input port."""

    input_port: int
    message: Message
    output_port: int | None
    deflected: bool


class RouterNode:
    """One NoC node (RE + injection queue) driven by the simulator.

    Parameters
    ----------
    node_id:
        Index of this node in the topology.
    out_degree / in_degree:
        Number of outgoing / incoming network links of this node.
    config:
        The NoC configuration (routing algorithm, collision policy, FIFO size).
    tables:
        Precomputed routing tables shared by all nodes.
    rng:
        Source of the SCM deflection randomness: either a
        :class:`random.Random` (the simulators' choice — drawn through
        :func:`~repro.utils.rng.bounded_draw` over its ``getrandbits``, the
        stream the vectorized engine reproduces bit-exactly) or a
        :class:`numpy.random.Generator`.
    """

    def __init__(
        self,
        node_id: int,
        out_degree: int,
        in_degree: int,
        config: NocConfiguration,
        tables: RoutingTables,
        rng: random.Random | np.random.Generator,
    ):
        self.node_id = node_id
        self.out_degree = out_degree
        self.in_degree = in_degree
        self.config = config
        self.tables = tables
        self._rng = rng
        if isinstance(rng, random.Random):
            getrandbits = rng.getrandbits
            self._draw = lambda n: bounded_draw(getrandbits, n)
        else:
            self._draw = lambda n: int(rng.integers(0, n))
        # Input side: one FIFO per incoming link plus the PE injection FIFO.
        self.input_fifos = [
            MessageFifo(config.fifo_capacity, name=f"node{node_id}.in{port}")
            for port in range(in_degree)
        ]
        self.injection_fifo = MessageFifo(
            config.fifo_capacity, name=f"node{node_id}.inject"
        )
        # Round-robin pointer over input ports (including the injection port).
        self._rr_pointer = 0
        # ASP-FT statistic: messages sent per output port so far.
        self.port_sent_count = np.zeros(max(out_degree, 1), dtype=np.int64)
        # Statistics.
        self.delivered_local = 0
        self.forwarded = 0

    # ------------------------------------------------------------------ #
    # Input-side helpers
    # ------------------------------------------------------------------ #
    def all_input_fifos(self) -> list[MessageFifo]:
        """Network input FIFOs followed by the injection FIFO."""
        return [*self.input_fifos, self.injection_fifo]

    def pending_messages(self) -> int:
        """Messages currently buffered in this node (all input FIFOs)."""
        return sum(len(f) for f in self.all_input_fifos())

    def max_input_occupancy(self) -> int:
        """Largest occupancy observed on any network input FIFO."""
        if not self.input_fifos:
            return 0
        return max(f.max_occupancy for f in self.input_fifos)

    def max_injection_occupancy(self) -> int:
        """Largest occupancy observed on the PE injection FIFO."""
        return self.injection_fifo.max_occupancy

    # ------------------------------------------------------------------ #
    # Serving order
    # ------------------------------------------------------------------ #
    def serving_order(self) -> list[int]:
        """Order in which input ports are offered to the crossbar this cycle.

        Port indices: ``0 .. in_degree-1`` are network inputs, ``in_degree``
        is the PE injection port.
        """
        fifos = self.all_input_fifos()
        n_ports = len(fifos)
        occupied = [port for port in range(n_ports) if not fifos[port].is_empty()]
        if not occupied:
            return []
        if self.config.routing_algorithm is RoutingAlgorithm.SSP_RR:
            start = self._rr_pointer % n_ports
            ordered = sorted(occupied, key=lambda port: (port - start) % n_ports)
            self._rr_pointer = (self._rr_pointer + 1) % n_ports
            return ordered
        # SSP-FL and ASP-FT both serve the longest FIFO first; ties are broken
        # by port index for determinism.
        return sorted(occupied, key=lambda port: (-len(fifos[port]), port))

    # ------------------------------------------------------------------ #
    # Output-port selection
    # ------------------------------------------------------------------ #
    def desired_output_ports(self, message: Message) -> tuple[int, ...]:
        """Output ports this message may legally take towards its destination."""
        if message.destination == self.node_id:
            raise SimulationError(
                f"node {self.node_id}: a locally destined message reached port selection"
            )
        if self.config.routing_algorithm.uses_all_paths:
            return self.tables.all_next_ports(self.node_id, message.destination)
        return (self.tables.single_next_port(self.node_id, message.destination),)

    def choose_output_port(
        self, allowed: tuple[int, ...], free_ports: set[int]
    ) -> int | None:
        """Pick one free output port among the allowed ones (traffic spreading for ASP)."""
        candidates = [port for port in allowed if port in free_ports]
        if not candidates:
            return None
        if self.config.routing_algorithm is RoutingAlgorithm.ASP_FT:
            # Spread traffic: prefer the allowed port that has carried the
            # fewest messages so far.
            return min(candidates, key=lambda port: (self.port_sent_count[port], port))
        return candidates[0]

    def choose_deflection_port(self, free_ports: set[int]) -> int | None:
        """SCM: pick a random free output port for a colliding message."""
        if self.config.collision_policy is not CollisionPolicy.SCM or not free_ports:
            return None
        ports = sorted(free_ports)
        return ports[self._draw(len(ports))]

    def record_send(self, output_port: int) -> None:
        """Update the traffic-spreading statistic after a message leaves."""
        self.port_sent_count[output_port] += 1
        self.forwarded += 1

"""NoC topology generators.

A topology is a directed multigraph over ``P`` router nodes.  Undirected
physical links (mesh, ring, spidergon, honeycomb) are represented by a pair of
opposite arcs.  The *degree* ``D`` of a topology is the maximum out-degree,
and the routing element of each node is an ``F x F`` crossbar with
``F = D + 1`` (the extra port connects the local PE), exactly as in the paper.

The topology set T of Section III-A is provided: ring, 2D mesh, toroidal mesh,
spidergon, rectangular honeycomb (brick-wall torus), generalized De Bruijn and
generalized Kautz digraphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TopologyError


@dataclass(frozen=True)
class Topology:
    """A directed interconnection graph over ``n_nodes`` routers.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"generalized-kautz(P=22,D=3)"``.
    family:
        Topology family key, e.g. ``"generalized-kautz"``.
    n_nodes:
        Number of router nodes (the parallelism degree ``P``).
    arcs:
        Ordered tuple of directed arcs ``(source, destination)``.  The arc
        index defines the *output port number* at the source node (ports are
        numbered in the order the arcs appear per source) and the *input port
        number* at the destination node.
    """

    name: str
    family: str
    n_nodes: int
    arcs: tuple[tuple[int, int], ...]
    _out_ports: dict[int, list[tuple[int, int]]] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    _in_ports: dict[int, list[tuple[int, int]]] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.n_nodes <= 1:
            raise TopologyError(f"a topology needs at least 2 nodes, got {self.n_nodes}")
        seen: set[tuple[int, int]] = set()
        for src, dst in self.arcs:
            if not (0 <= src < self.n_nodes and 0 <= dst < self.n_nodes):
                raise TopologyError(f"arc ({src}, {dst}) references a node outside the topology")
            if src == dst:
                raise TopologyError(f"self-loop arc at node {src} is not allowed")
            if (src, dst) in seen:
                raise TopologyError(f"duplicate arc ({src}, {dst})")
            seen.add((src, dst))
        out_ports: dict[int, list[tuple[int, int]]] = {n: [] for n in range(self.n_nodes)}
        in_ports: dict[int, list[tuple[int, int]]] = {n: [] for n in range(self.n_nodes)}
        for arc_index, (src, dst) in enumerate(self.arcs):
            out_ports[src].append((arc_index, dst))
            in_ports[dst].append((arc_index, src))
        object.__setattr__(self, "_out_ports", out_ports)
        object.__setattr__(self, "_in_ports", in_ports)

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    def out_arcs(self, node: int) -> list[tuple[int, int]]:
        """Outgoing arcs of ``node`` as ``(arc_index, destination)`` pairs."""
        return list(self._out_ports[node])

    def in_arcs(self, node: int) -> list[tuple[int, int]]:
        """Incoming arcs of ``node`` as ``(arc_index, source)`` pairs."""
        return list(self._in_ports[node])

    def out_neighbors(self, node: int) -> list[int]:
        """Destination nodes reachable in one hop from ``node``."""
        return [dst for _, dst in self._out_ports[node]]

    def out_degree(self, node: int) -> int:
        """Out-degree of a node."""
        return len(self._out_ports[node])

    def in_degree(self, node: int) -> int:
        """In-degree of a node."""
        return len(self._in_ports[node])

    @property
    def degree(self) -> int:
        """Topology degree ``D`` — the maximum out-degree over all nodes."""
        return max(self.out_degree(n) for n in range(self.n_nodes))

    @property
    def crossbar_size(self) -> int:
        """Crossbar size ``F = D + 1`` of the routing element (paper Fig. 1)."""
        return self.degree + 1

    @property
    def n_arcs(self) -> int:
        """Number of directed arcs (unidirectional physical links)."""
        return len(self.arcs)

    # ------------------------------------------------------------------ #
    # Dense (struct-of-arrays) views used by the vectorized cycle engine
    # ------------------------------------------------------------------ #
    def _dense_views(self) -> dict[str, np.ndarray]:
        """Build (once) the dense port-indexed arrays describing this graph."""
        cached = self.__dict__.get("_dense_cache")
        if cached is not None:
            return cached
        n = self.n_nodes
        max_out = max((len(self._out_ports[v]) for v in range(n)), default=0)
        max_in = max((len(self._in_ports[v]) for v in range(n)), default=0)
        out_degrees = np.zeros(n, dtype=np.int64)
        in_degrees = np.zeros(n, dtype=np.int64)
        out_neighbor = np.full((n, max(max_out, 1)), -1, dtype=np.int64)
        in_source = np.full((n, max(max_in, 1)), -1, dtype=np.int64)
        # (node, out port) -> input-port index at the reached neighbour.  The
        # input-port number of an arc is its position in the destination's
        # in_arcs list, mirroring how the simulators wire FIFOs to links.
        dest_input_port = np.full((n, max(max_out, 1)), -1, dtype=np.int64)
        arc_id = np.full((n, max(max_out, 1)), -1, dtype=np.int64)
        arc_input_port: dict[int, int] = {}
        for node in range(n):
            in_degrees[node] = len(self._in_ports[node])
            for input_port, (arc_index, source) in enumerate(self._in_ports[node]):
                in_source[node, input_port] = source
                arc_input_port[arc_index] = input_port
        for node in range(n):
            out_degrees[node] = len(self._out_ports[node])
            for out_port, (arc_index, neighbor) in enumerate(self._out_ports[node]):
                out_neighbor[node, out_port] = neighbor
                dest_input_port[node, out_port] = arc_input_port[arc_index]
                arc_id[node, out_port] = arc_index
        views = {
            "out_degrees": out_degrees,
            "in_degrees": in_degrees,
            "out_neighbor": out_neighbor,
            "in_source": in_source,
            "dest_input_port": dest_input_port,
            "arc_id": arc_id,
        }
        object.__setattr__(self, "_dense_cache", views)
        return views

    @property
    def out_degrees(self) -> np.ndarray:
        """``(P,)`` out-degree of every node."""
        return self._dense_views()["out_degrees"]

    @property
    def in_degrees(self) -> np.ndarray:
        """``(P,)`` in-degree of every node."""
        return self._dense_views()["in_degrees"]

    @property
    def out_neighbor_matrix(self) -> np.ndarray:
        """``(P, Dmax)`` neighbour reached through each output port (-1 pad)."""
        return self._dense_views()["out_neighbor"]

    @property
    def in_source_matrix(self) -> np.ndarray:
        """``(P, Dmax_in)`` source node feeding each input port (-1 pad)."""
        return self._dense_views()["in_source"]

    @property
    def dest_input_port_matrix(self) -> np.ndarray:
        """``(P, Dmax)`` input-port index at the neighbour reached through each
        output port (-1 pad) — the link-to-FIFO wiring of the cycle engine."""
        return self._dense_views()["dest_input_port"]

    @property
    def arc_id_matrix(self) -> np.ndarray:
        """``(P, Dmax)`` global arc index behind each (node, output port); -1 pad.

        Used by the analytical model's arc-load accounting: per-arc traffic
        accumulated while walking routing paths indexes directly into a flat
        ``(n_arcs,)`` load vector through this matrix.
        """
        return self._dense_views()["arc_id"]

    def is_strongly_connected(self) -> bool:
        """True when every node can reach every other node."""
        for start in range(self.n_nodes):
            reached = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbor in self.out_neighbors(node):
                    if neighbor not in reached:
                        reached.add(neighbor)
                        frontier.append(neighbor)
            if len(reached) != self.n_nodes:
                return False
        return True

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.name


# --------------------------------------------------------------------------- #
# Undirected helper
# --------------------------------------------------------------------------- #
def _from_undirected_edges(
    name: str, family: str, n_nodes: int, edges: set[tuple[int, int]]
) -> Topology:
    """Create a topology from undirected edges (two arcs per edge)."""
    arcs: list[tuple[int, int]] = []
    for a, b in sorted(edges):
        arcs.append((a, b))
        arcs.append((b, a))
    return Topology(name=name, family=family, n_nodes=n_nodes, arcs=tuple(arcs))


def _factor_pair(n_nodes: int) -> tuple[int, int]:
    """Factor ``n_nodes`` into the most square ``rows x cols`` grid."""
    best: tuple[int, int] | None = None
    for rows in range(1, int(n_nodes**0.5) + 1):
        if n_nodes % rows == 0:
            best = (rows, n_nodes // rows)
    if best is None or best[0] == 1:
        raise TopologyError(
            f"{n_nodes} nodes cannot be arranged in a non-degenerate 2D grid"
        )
    return best


# --------------------------------------------------------------------------- #
# Topology factories
# --------------------------------------------------------------------------- #
def ring(n_nodes: int) -> Topology:
    """Bidirectional ring, degree 2."""
    if n_nodes < 3:
        raise TopologyError(f"a ring needs at least 3 nodes, got {n_nodes}")
    edges = {(i, (i + 1) % n_nodes) for i in range(n_nodes)}
    normalized = {(min(a, b), max(a, b)) for a, b in edges}
    return _from_undirected_edges(f"ring(P={n_nodes})", "ring", n_nodes, normalized)


def mesh_2d(n_nodes: int) -> Topology:
    """Open 2D mesh (degree up to 4) over the most square factorisation of ``n_nodes``."""
    rows, cols = _factor_pair(n_nodes)
    edges: set[tuple[int, int]] = set()
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.add((node, node + 1))
            if r + 1 < rows:
                edges.add((node, node + cols))
    return _from_undirected_edges(
        f"mesh(P={n_nodes},{rows}x{cols})", "mesh", n_nodes, edges
    )


def toroidal_mesh(n_nodes: int) -> Topology:
    """Toroidal (wrap-around) 2D mesh, degree 4."""
    rows, cols = _factor_pair(n_nodes)
    if rows < 3 or cols < 3:
        # Wrap-around links on a 2-wide dimension would duplicate existing edges.
        raise TopologyError(
            f"a toroidal mesh needs both grid dimensions >= 3, got {rows}x{cols}"
        )
    edges: set[tuple[int, int]] = set()
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            edges.add((min(node, right), max(node, right)))
            edges.add((min(node, down), max(node, down)))
    return _from_undirected_edges(
        f"toroidal-mesh(P={n_nodes},{rows}x{cols})", "toroidal-mesh", n_nodes, edges
    )


def spidergon(n_nodes: int) -> Topology:
    """Spidergon: bidirectional ring plus diameter (across) links, degree 3."""
    if n_nodes < 4 or n_nodes % 2 != 0:
        raise TopologyError(f"a spidergon needs an even node count >= 4, got {n_nodes}")
    edges: set[tuple[int, int]] = set()
    half = n_nodes // 2
    for i in range(n_nodes):
        ring_next = (i + 1) % n_nodes
        across = (i + half) % n_nodes
        edges.add((min(i, ring_next), max(i, ring_next)))
        edges.add((min(i, across), max(i, across)))
    return _from_undirected_edges(f"spidergon(P={n_nodes})", "spidergon", n_nodes, edges)


def honeycomb_torus(n_nodes: int) -> Topology:
    """Rectangular (brick-wall) honeycomb with wrap-around links.

    Nodes are arranged on a ``rows x cols`` grid with horizontal wrap-around
    links on every row and vertical links on alternating columns (brick-wall
    pattern), plus vertical wrap-around, giving a maximum degree of 4 — the
    "rectangular honeycomb" configuration used in the paper's Table I.
    """
    rows, cols = _factor_pair(n_nodes)
    edges: set[tuple[int, int]] = set()
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            right = r * cols + (c + 1) % cols
            if right != node:
                edges.add((min(node, right), max(node, right)))
            # Brick-wall vertical links: present when (r + c) is even.
            if rows > 1 and (r + c) % 2 == 0:
                down = ((r + 1) % rows) * cols + c
                if down != node:
                    edges.add((min(node, down), max(node, down)))
    return _from_undirected_edges(
        f"honeycomb(P={n_nodes},{rows}x{cols})", "honeycomb", n_nodes, edges
    )


def generalized_de_bruijn(n_nodes: int, degree: int) -> Topology:
    """Generalized De Bruijn digraph GB(degree, n_nodes).

    Arcs go from node ``i`` to ``(degree * i + k) mod n_nodes`` for
    ``k = 0 .. degree-1``.  Self-loops and duplicate arcs, which appear for a
    few ``(i, k)`` combinations, are redirected to the next free node so every
    node keeps out-degree ``degree`` whenever possible.
    """
    return _iterated_line_digraph(
        n_nodes,
        degree,
        lambda i, k: (degree * i + k) % n_nodes,
        family="generalized-de-bruijn",
    )


def generalized_kautz(n_nodes: int, degree: int) -> Topology:
    """Generalized Kautz digraph GK(degree, n_nodes).

    Arcs go from node ``i`` to ``(-degree * i - k - 1) mod n_nodes`` for
    ``k = 0 .. degree-1``.  Kautz digraphs achieve (near-)optimal diameter for
    a given degree, which is why they dominate the paper's Table I.
    """
    return _iterated_line_digraph(
        n_nodes,
        degree,
        lambda i, k: (-degree * i - k - 1) % n_nodes,
        family="generalized-kautz",
    )


def _iterated_line_digraph(n_nodes, degree, successor, family: str) -> Topology:
    """Shared construction for De Bruijn / Kautz style digraphs."""
    if n_nodes < 2:
        raise TopologyError(f"{family} needs at least 2 nodes, got {n_nodes}")
    if degree < 2:
        raise TopologyError(f"{family} needs degree >= 2, got {degree}")
    if degree >= n_nodes:
        raise TopologyError(
            f"{family} needs degree < n_nodes, got degree={degree}, n_nodes={n_nodes}"
        )
    arcs: list[tuple[int, int]] = []
    for node in range(n_nodes):
        used: set[int] = set()
        for k in range(degree):
            target = successor(node, k)
            # Avoid self-loops and duplicate arcs by moving to the next node.
            attempts = 0
            while (target == node or target in used) and attempts < n_nodes:
                target = (target + 1) % n_nodes
                attempts += 1
            if target == node or target in used:
                raise TopologyError(
                    f"cannot build {family}(P={n_nodes}, D={degree}): "
                    f"no duplicate-free successor for node {node}"
                )
            used.add(target)
            arcs.append((node, target))
    name = f"{family}(P={n_nodes},D={degree})"
    topology = Topology(name=name, family=family, n_nodes=n_nodes, arcs=tuple(arcs))
    if not topology.is_strongly_connected():
        raise TopologyError(f"{name} is not strongly connected")
    return topology


#: Registry used by the design-space exploration: family name -> builder taking
#: (n_nodes, degree) and returning a Topology.  Families whose degree is fixed
#: by construction ignore the degree argument but validate it.
TOPOLOGY_FAMILIES: dict[str, str] = {
    "ring": "degree 2, bidirectional ring",
    "mesh": "degree <= 4, open 2D mesh",
    "toroidal-mesh": "degree 4, wrap-around 2D mesh",
    "spidergon": "degree 3, ring + across links",
    "honeycomb": "degree <= 4, rectangular (brick-wall) honeycomb torus",
    "generalized-de-bruijn": "degree D directed De Bruijn digraph",
    "generalized-kautz": "degree D directed Kautz digraph",
}


def build_topology(family: str, n_nodes: int, degree: int | None = None) -> Topology:
    """Build a topology by family name; ``degree`` is required for digraph families.

    Fixed-degree families (ring, spidergon, toroidal mesh, honeycomb, mesh)
    accept a ``degree`` argument only as a cross-check: a mismatch raises
    :class:`~repro.errors.TopologyError`.
    """
    if family not in TOPOLOGY_FAMILIES:
        raise TopologyError(
            f"unknown topology family {family!r}; known families: {sorted(TOPOLOGY_FAMILIES)}"
        )
    if family == "generalized-de-bruijn":
        if degree is None:
            raise TopologyError("generalized-de-bruijn requires an explicit degree")
        return generalized_de_bruijn(n_nodes, degree)
    if family == "generalized-kautz":
        if degree is None:
            raise TopologyError("generalized-kautz requires an explicit degree")
        return generalized_kautz(n_nodes, degree)
    builders = {
        "ring": ring,
        "mesh": mesh_2d,
        "toroidal-mesh": toroidal_mesh,
        "spidergon": spidergon,
        "honeycomb": honeycomb_torus,
    }
    topology = builders[family](n_nodes)
    if degree is not None and topology.degree != degree:
        raise TopologyError(
            f"{family}(P={n_nodes}) has degree {topology.degree}, requested {degree}"
        )
    return topology

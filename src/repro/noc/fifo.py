"""Input FIFOs of the routing element.

Each input port of the F x F crossbar is buffered by a FIFO (paper Fig. 1).
The simulator uses :class:`MessageFifo` both for those input FIFOs and for
the PE injection queue; the maximum occupancy ever reached is recorded because
it is what sizes the hardware FIFO (and therefore drives the NoC area model).
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.noc.message import Message


class MessageFifo:
    """Bounded FIFO with occupancy statistics."""

    def __init__(self, capacity: int, name: str = "fifo"):
        if capacity <= 0:
            raise SimulationError(f"FIFO capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.name = name
        self._queue: deque[Message] = deque()
        self._max_occupancy = 0
        self._total_pushes = 0

    # ------------------------------------------------------------------ #
    # Queue operations
    # ------------------------------------------------------------------ #
    def push(self, message: Message) -> None:
        """Append a message; raises when the FIFO is full (backpressure bug guard)."""
        if self.is_full():
            raise SimulationError(
                f"{self.name}: push on a full FIFO (capacity {self.capacity}); "
                "the simulator should have applied backpressure"
            )
        self._queue.append(message)
        self._total_pushes += 1
        if len(self._queue) > self._max_occupancy:
            self._max_occupancy = len(self._queue)

    def pop(self) -> Message:
        """Remove and return the head message."""
        if not self._queue:
            raise SimulationError(f"{self.name}: pop on an empty FIFO")
        return self._queue.popleft()

    def head(self) -> Message | None:
        """Peek at the head message without removing it."""
        return self._queue[0] if self._queue else None

    # ------------------------------------------------------------------ #
    # State queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._queue)

    def is_empty(self) -> bool:
        """True when the FIFO holds no messages."""
        return not self._queue

    def is_full(self) -> bool:
        """True when the FIFO is at capacity."""
        return len(self._queue) >= self.capacity

    @property
    def occupancy(self) -> int:
        """Current number of queued messages."""
        return len(self._queue)

    @property
    def max_occupancy(self) -> int:
        """Largest occupancy ever observed (sizes the hardware FIFO)."""
        return self._max_occupancy

    @property
    def total_pushes(self) -> int:
        """Total number of messages that transited this FIFO."""
        return self._total_pushes

    def reset_statistics(self) -> None:
        """Clear occupancy statistics (keeps queued messages)."""
        self._max_occupancy = len(self._queue)
        self._total_pushes = 0

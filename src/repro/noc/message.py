"""Messages (packets) exchanged over the intra-IP NoC.

One message carries one extrinsic value (an LLDPC ``lambda_k[c]`` update or a
turbo extrinsic) from the PE that produced it to the PE that will consume it
in the next layer / half-iteration, together with the destination memory
location ``t'`` (paper Fig. 1).  The payload contents are irrelevant to the
cycle-accurate simulation — only identity, source, destination and timing are
tracked.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Message:
    """A single-flit packet travelling through the NoC.

    Attributes
    ----------
    identifier:
        Unique message index within the simulated iteration.
    source / destination:
        PE (node) indices.
    memory_location:
        Destination memory address ``t'`` where the payload will be stored.
    injection_cycle:
        Cycle at which the PE pushed the message into its local injection queue.
    delivery_cycle:
        Cycle at which the message reached the destination PE memory
        (-1 while in flight).
    hops:
        Number of router-to-router hops traversed so far.
    misroutes:
        Number of hops taken away from a shortest path (SCM collisions).
    """

    identifier: int
    source: int
    destination: int
    memory_location: int = 0
    injection_cycle: int = 0
    delivery_cycle: int = -1
    hops: int = 0
    misroutes: int = 0

    @property
    def delivered(self) -> bool:
        """True once the message has reached its destination memory."""
        return self.delivery_cycle >= 0

    @property
    def latency(self) -> int:
        """Injection-to-delivery latency in cycles (-1 while in flight)."""
        if not self.delivered:
            return -1
        return self.delivery_cycle - self.injection_cycle

    def is_local(self) -> bool:
        """True when source and destination PEs coincide."""
        return self.source == self.destination


@dataclass
class MessageStatistics:
    """Aggregate statistics over a set of delivered messages."""

    count: int = 0
    total_latency: int = 0
    max_latency: int = 0
    total_hops: int = 0
    misrouted: int = 0
    _latencies: list[int] = field(default_factory=list, repr=False)

    def record(self, message: Message) -> None:
        """Accumulate one delivered message."""
        if not message.delivered:
            return
        self.count += 1
        latency = message.latency
        self.total_latency += latency
        self.max_latency = max(self.max_latency, latency)
        self.total_hops += message.hops
        if message.misroutes:
            self.misrouted += 1
        self._latencies.append(latency)

    @property
    def mean_latency(self) -> float:
        """Average injection-to-delivery latency."""
        return self.total_latency / self.count if self.count else 0.0

    @property
    def mean_hops(self) -> float:
        """Average number of hops per delivered message."""
        return self.total_hops / self.count if self.count else 0.0

    def latency_percentile(self, percentile: float) -> int:
        """Latency below which ``percentile`` % of messages were delivered."""
        if not self._latencies:
            return 0
        ordered = sorted(self._latencies)
        index = min(len(ordered) - 1, int(round(percentile / 100.0 * (len(ordered) - 1))))
        return ordered[index]

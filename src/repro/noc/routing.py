"""Shortest-path routing tables for the NoC.

The paper's routing algorithms rely on the off-line computation of shortest
paths between all node pairs:

* **SSP** (single shortest path) keeps one next-hop output port per
  (current node, destination) pair — one routing table;
* **ASP** (all local shortest paths) keeps *every* output port that lies on
  some shortest path — multiple routing tables, enabling the traffic-spreading
  policy (ASP-FT).

Both are produced by :func:`build_routing_tables` using breadth-first search
from every destination over the reversed graph.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import RoutingError
from repro.noc.topologies import Topology


@dataclass(frozen=True)
class HopStatistics:
    """Traffic-weighted moments of the shortest-path hop-count distribution.

    Produced by :meth:`RoutingTables.hop_statistics`; the analytical NoC
    model builds its zero-contention latency floor from these moments.
    """

    total_messages: float
    mean: float
    second_moment: float
    maximum: int

    @property
    def variance(self) -> float:
        """Population variance of the hop count."""
        return max(self.second_moment - self.mean * self.mean, 0.0)


@dataclass(frozen=True)
class RoutingTables:
    """Precomputed distance and next-hop information for one topology.

    Attributes
    ----------
    topology:
        The topology the tables were built for.
    distance:
        ``(P, P)`` hop-count matrix.
    next_ports:
        ``next_ports[node][dest]`` is the tuple of *output-port indices* (local
        arc positions, i.e. indices into ``topology.out_arcs(node)``) that lie
        on a shortest path from ``node`` to ``dest``.  Empty for
        ``node == dest``.
    """

    topology: Topology
    distance: np.ndarray
    next_ports: tuple[tuple[tuple[int, ...], ...], ...]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def single_next_port(self, node: int, dest: int) -> int:
        """The SSP output port from ``node`` towards ``dest`` (first shortest path)."""
        ports = self.next_ports[node][dest]
        if not ports:
            raise RoutingError(f"no route from node {node} to node {dest}")
        return ports[0]

    def all_next_ports(self, node: int, dest: int) -> tuple[int, ...]:
        """All output ports of ``node`` lying on a shortest path to ``dest``."""
        ports = self.next_ports[node][dest]
        if not ports:
            raise RoutingError(f"no route from node {node} to node {dest}")
        return ports

    # ------------------------------------------------------------------ #
    # Dense (struct-of-arrays) views used by the vectorized cycle engine
    # ------------------------------------------------------------------ #
    def _dense_views(self) -> dict[str, np.ndarray]:
        """Build (once) dense array views of the per-pair port tuples."""
        cached = self.__dict__.get("_dense_cache")
        if cached is not None:
            return cached
        n = self.topology.n_nodes
        max_ports = 1
        for node in range(n):
            for dest in range(n):
                max_ports = max(max_ports, len(self.next_ports[node][dest]))
        single = np.full((n, n), -1, dtype=np.int64)
        padded = np.full((n, n, max_ports), -1, dtype=np.int64)
        counts = np.zeros((n, n), dtype=np.int64)
        for node in range(n):
            for dest in range(n):
                ports = self.next_ports[node][dest]
                if not ports:
                    continue
                single[node, dest] = ports[0]
                counts[node, dest] = len(ports)
                padded[node, dest, : len(ports)] = ports
        views = {"single": single, "padded": padded, "counts": counts}
        object.__setattr__(self, "_dense_cache", views)
        return views

    @property
    def next_port_matrix(self) -> np.ndarray:
        """``(P, P)`` SSP next-hop output port per (node, dest); -1 on the diagonal."""
        return self._dense_views()["single"]

    @property
    def all_ports_matrix(self) -> np.ndarray:
        """``(P, P, Kmax)`` every shortest-path output port per pair, -1 padded."""
        return self._dense_views()["padded"]

    @property
    def port_count_matrix(self) -> np.ndarray:
        """``(P, P)`` number of shortest-path output ports per (node, dest)."""
        return self._dense_views()["counts"]

    @property
    def diameter(self) -> int:
        """Largest shortest-path distance between any node pair."""
        return int(self.distance.max())

    # ------------------------------------------------------------------ #
    # Hop-count statistics and arc loads (analytical-model machinery)
    # ------------------------------------------------------------------ #
    def hop_statistics(self, pair_counts: np.ndarray) -> "HopStatistics":
        """Moments of the hop-count distribution under a traffic demand.

        ``pair_counts`` is a ``(P, P)`` matrix of message counts per
        (source, destination) pair — typically
        :meth:`repro.noc.traffic.TrafficPattern.pair_counts`.  The returned
        moments weight each pair's shortest-path distance by its message
        count; pairs with zero messages contribute nothing.  The maximum is
        always bounded by :attr:`diameter` (shortest-path routing never plans
        a longer route; SCM deflections can exceed it at *simulation* time,
        which is exactly the misroute excess the analytical model corrects
        for separately).
        """
        weights = np.asarray(pair_counts, dtype=np.float64)
        if weights.shape != self.distance.shape:
            raise RoutingError(
                f"pair_counts must be shaped {self.distance.shape}, got {weights.shape}"
            )
        total = float(weights.sum())
        if total <= 0:
            return HopStatistics(
                total_messages=0.0, mean=0.0, second_moment=0.0, maximum=0
            )
        dist = self.distance.astype(np.float64)
        mean = float((weights * dist).sum() / total)
        second = float((weights * dist * dist).sum() / total)
        maximum = int(self.distance[weights > 0].max(initial=0))
        return HopStatistics(
            total_messages=total, mean=mean, second_moment=second, maximum=maximum
        )

    def ssp_arc_loads(self, pair_counts: np.ndarray) -> np.ndarray:
        """``(n_arcs,)`` messages crossing each arc under SSP routing.

        SSP follows exactly one next-hop port per (node, destination), so the
        path of every (source, destination) pair is unique and the per-arc
        load is exact: it is the number of messages whose shortest path uses
        the arc.  Computed by walking all pairs toward their destinations in
        lockstep over the dense next-port matrix (diameter-bounded steps).
        """
        weights = np.asarray(pair_counts, dtype=np.float64)
        n = self.topology.n_nodes
        if weights.shape != (n, n):
            raise RoutingError(f"pair_counts must be shaped ({n}, {n}), got {weights.shape}")
        loads = np.zeros(max(self.topology.n_arcs, 1), dtype=np.float64)
        next_port = self.next_port_matrix
        arc_id = self.topology.arc_id_matrix
        neighbor = self.topology.out_neighbor_matrix
        src, dst = np.nonzero(weights)
        if src.size == 0:
            return loads
        w = weights[src, dst]
        live = src != dst
        current, dest, w = src[live], dst[live], w[live]
        while current.size:
            port = next_port[current, dest]
            np.add.at(loads, arc_id[current, port], w)
            current = neighbor[current, port]
            live = current != dest
            current, dest, w = current[live], dest[live], w[live]
        return loads

    def asp_arc_loads(self, pair_counts: np.ndarray) -> np.ndarray:
        """``(n_arcs,)`` fractional arc loads under equal-split ASP routing.

        ASP-FT spreads each node's traffic over *every* shortest-path output
        port, picking the least-used free one; the analytical model
        approximates that spreading as an equal fractional split.  For each
        destination the demand is relaxed from the farthest nodes inward
        (nodes at distance ``l`` only ever forward to nodes at ``l - 1``), so
        a single pass per destination propagates all flow exactly.
        """
        weights = np.asarray(pair_counts, dtype=np.float64)
        n = self.topology.n_nodes
        if weights.shape != (n, n):
            raise RoutingError(f"pair_counts must be shaped ({n}, {n}), got {weights.shape}")
        loads = np.zeros(max(self.topology.n_arcs, 1), dtype=np.float64)
        arc_id = self.topology.arc_id_matrix
        neighbor = self.topology.out_neighbor_matrix
        for dest in range(n):
            if not weights[:, dest].any():
                continue
            flow = weights[:, dest].copy()
            order = np.argsort(-self.distance[:, dest], kind="stable")
            for node in order:
                node = int(node)
                if node == dest or flow[node] <= 0:
                    continue
                ports = self.next_ports[node][dest]
                share = flow[node] / len(ports)
                for port in ports:
                    loads[arc_id[node, port]] += share
                    flow[neighbor[node, port]] += share
        return loads

    @property
    def average_distance(self) -> float:
        """Mean shortest-path distance over ordered pairs of distinct nodes."""
        n = self.topology.n_nodes
        mask = ~np.eye(n, dtype=bool)
        return float(self.distance[mask].mean())

    def routing_table_entries(self, algorithm_uses_all_paths: bool) -> int:
        """Number of (node, dest) -> port entries stored by the routing memory.

        SSP stores one port per destination per node; ASP stores every
        shortest-path port.  Used by the area model of the PP node
        architecture.
        """
        n = self.topology.n_nodes
        if not algorithm_uses_all_paths:
            return n * (n - 1)
        total = 0
        for node in range(n):
            for dest in range(n):
                if node != dest:
                    total += len(self.next_ports[node][dest])
        return total


def build_routing_tables(topology: Topology) -> RoutingTables:
    """Compute hop distances and shortest-path output ports for every node pair."""
    n = topology.n_nodes
    # Reverse adjacency: for BFS from each destination over reversed arcs.
    reverse_adj: list[list[int]] = [[] for _ in range(n)]
    for src, dst in topology.arcs:
        reverse_adj[dst].append(src)

    distance = np.full((n, n), -1, dtype=np.int64)
    for dest in range(n):
        distance[dest, dest] = 0
        queue: deque[int] = deque([dest])
        while queue:
            node = queue.popleft()
            for predecessor in reverse_adj[node]:
                if distance[predecessor, dest] < 0:
                    distance[predecessor, dest] = distance[node, dest] + 1
                    queue.append(predecessor)
    if (distance < 0).any():
        raise RoutingError(
            f"topology {topology.name} is not strongly connected; routing impossible"
        )

    next_ports: list[list[tuple[int, ...]]] = []
    for node in range(n):
        out_arcs = topology.out_arcs(node)
        per_dest: list[tuple[int, ...]] = []
        for dest in range(n):
            if node == dest:
                per_dest.append(())
                continue
            ports = tuple(
                port_index
                for port_index, (_, neighbor) in enumerate(out_arcs)
                if distance[neighbor, dest] + 1 == distance[node, dest]
            )
            if not ports:
                raise RoutingError(
                    f"inconsistent distances: no shortest-path port from {node} to {dest}"
                )
            per_dest.append(ports)
        next_ports.append(per_dest)

    return RoutingTables(
        topology=topology,
        distance=distance,
        next_ports=tuple(tuple(row) for row in next_ports),
    )

"""Diagnostic CLI: ``python -m repro.backend [name]``.

With no argument, prints one row per registered backend — availability,
version, device, whether the scalar fallbacks run JIT-compiled, whether
float kernels are bit-exact against NumPy — plus the active selection and
where it came from (``use()``, ``REPRO_BACKEND``, or the default).

With a backend name, probes just that backend and exits 0 when it is
usable, 1 when its optional dependency is missing.  Unknown names raise
the same typed :class:`~repro.errors.ConfigurationError` (listing valid
choices) that :func:`repro.backend.use` raises.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import backend as backends
from repro.errors import BackendUnavailableError


def _probe_rows() -> list[tuple[str, str, str, str, str, str]]:
    rows = []
    for name in backends.names():
        try:
            b = backends.backend(name)
        except BackendUnavailableError as exc:
            cause = exc.__cause__
            detail = f"unavailable ({cause})" if cause is not None else "unavailable"
            rows.append((name, detail, "-", "-", "-", "-"))
            continue
        rows.append(
            (
                name,
                "available",
                b.version,
                b.device,
                "yes" if b.jit else "no",
                "exact" if b.exact else "tolerance",
            )
        )
    return rows


def _selection_source() -> str:
    if backends._SELECTED is not None:
        return "repro.backend.use()"
    if os.environ.get("REPRO_BACKEND"):
        return "REPRO_BACKEND environment variable"
    return "default"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.backend",
        description="Show registered array backends and the active selection.",
    )
    parser.add_argument(
        "name",
        nargs="?",
        default=None,
        help="probe one backend; exit 0 if usable, 1 if its optional "
        "dependency is missing (unknown names raise ConfigurationError)",
    )
    args = parser.parse_args(argv)

    if args.name is not None:
        try:
            b = backends.backend(args.name)
        except BackendUnavailableError as exc:
            print(f"{args.name}: unavailable — {exc}")
            return 1
        print(
            f"{b.name}: available (version {b.version}, device {b.device}, "
            f"jit={'yes' if b.jit else 'no'}, "
            f"floats={'exact' if b.exact else 'tolerance'})"
        )
        return 0

    header = ("backend", "status", "version", "device", "jit", "floats")
    rows = [header, *_probe_rows()]
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    for row in rows:
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    active = backends.active()
    print()
    print(f"active: {active.name} (selected via {_selection_source()})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""NumPy-surface adapter over ``torch`` tensors.

torch's API diverges from NumPy exactly where the ported kernels live
(``dim`` vs ``axis``, ``max`` returning ``(values, indices)``, ``cat`` vs
``concatenate``), so the torch backend's ``xp`` is this adapter rather than
the raw module.  Only the functions the ported kernels actually call are
mapped; anything else falls through to the ``torch`` module via
``__getattr__`` so incidental uses of matching names still work.

The adapter is intentionally *thin*: every function takes and returns
``torch.Tensor`` objects (host NumPy inputs are lifted by ``asarray``), and
float results follow torch's arithmetic — bit-exactness versus NumPy is not
guaranteed, which is why the torch backend registers with ``exact=False``
and the differential suite pins it with tolerances instead of equality.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["TorchNamespace"]


def _dim(axis: Any) -> Any:
    return axis


class TorchNamespace:
    """Callable-surface adapter: NumPy names, torch tensors underneath."""

    def __init__(self, torch_module: Any, device: str = "cpu"):
        self.torch = torch_module
        self.device = device
        # Dtype aliases so ``dtype=xp.float64``-style call sites resolve.
        self.float64 = torch_module.float64
        self.float32 = torch_module.float32
        self.int64 = torch_module.int64
        self.int32 = torch_module.int32
        self.int8 = torch_module.int8
        self.bool_ = torch_module.bool
        self.inf = float("inf")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _map_dtype(self, dtype: Any) -> Any:
        if dtype is None or isinstance(dtype, self.torch.dtype):
            return dtype
        return {
            np.float64: self.float64,
            np.float32: self.float32,
            np.int64: self.int64,
            np.int32: self.int32,
            np.int8: self.int8,
            bool: self.bool_,
            np.bool_: self.bool_,
        }.get(np.dtype(dtype).type if dtype is not bool else bool, dtype)

    def asarray(self, values: Any, dtype: Any = None) -> Any:
        dtype = self._map_dtype(dtype)
        if isinstance(values, self.torch.Tensor):
            out = values.to(self.device)
            return out if dtype is None else out.to(dtype)
        return self.torch.as_tensor(
            np.asarray(values), dtype=dtype, device=self.device
        )

    def zeros(self, shape: Any, dtype: Any = None) -> Any:
        return self.torch.zeros(
            shape, dtype=self._map_dtype(dtype) or self.float64, device=self.device
        )

    def empty(self, shape: Any, dtype: Any = None) -> Any:
        return self.torch.empty(
            shape, dtype=self._map_dtype(dtype) or self.float64, device=self.device
        )

    def empty_like(self, a: Any) -> Any:
        return self.torch.empty_like(a)

    def zeros_like(self, a: Any) -> Any:
        return self.torch.zeros_like(a)

    def ones_like(self, a: Any) -> Any:
        return self.torch.ones_like(a)

    def arange(self, *args: Any, dtype: Any = None) -> Any:
        return self.torch.arange(
            *args, dtype=self._map_dtype(dtype), device=self.device
        )

    def copy(self, a: Any) -> Any:
        return a.clone()

    def ascontiguousarray(self, a: Any) -> Any:
        return a.contiguous()

    # ------------------------------------------------------------------ #
    # Elementwise
    # ------------------------------------------------------------------ #
    def where(self, cond: Any, a: Any, b: Any) -> Any:
        a = a if isinstance(a, self.torch.Tensor) else self.torch.as_tensor(
            a, device=self.device
        )
        b = b if isinstance(b, self.torch.Tensor) else self.torch.as_tensor(
            b, device=self.device
        )
        return self.torch.where(cond, a, b)

    def abs(self, a: Any) -> Any:
        return self.torch.abs(a)

    def signbit(self, a: Any) -> Any:
        return self.torch.signbit(a)

    def clip(self, a: Any, lo: Any, hi: Any) -> Any:
        return self.torch.clamp(a, min=lo, max=hi)

    def tanh(self, a: Any) -> Any:
        return self.torch.tanh(a)

    def arctanh(self, a: Any) -> Any:
        return self.torch.atanh(a)

    def exp(self, a: Any) -> Any:
        return self.torch.exp(a)

    def log(self, a: Any) -> Any:
        return self.torch.log(a)

    def maximum(self, a: Any, b: Any, out: Any = None) -> Any:
        if out is not None:
            return self.torch.maximum(a, b, out=out)
        return self.torch.maximum(a, b)

    def minimum(self, a: Any, b: Any) -> Any:
        return self.torch.minimum(a, b)

    # ------------------------------------------------------------------ #
    # Reductions / scans
    # ------------------------------------------------------------------ #
    def amax(self, a: Any, axis: Any = None, keepdims: bool = False) -> Any:
        if axis is None:
            return self.torch.amax(a)
        return self.torch.amax(a, dim=_dim(axis), keepdim=keepdims)

    def amin(self, a: Any, axis: Any = None, keepdims: bool = False) -> Any:
        if axis is None:
            return self.torch.amin(a)
        return self.torch.amin(a, dim=_dim(axis), keepdim=keepdims)

    def sum(self, a: Any, axis: Any = None, keepdims: bool = False) -> Any:
        if axis is None:
            return self.torch.sum(a)
        return self.torch.sum(a, dim=_dim(axis), keepdim=keepdims)

    def prod(self, a: Any, axis: Any = None) -> Any:
        if axis is None:
            return self.torch.prod(a)
        return self.torch.prod(a, dim=_dim(axis))

    def argmin(self, a: Any, axis: Any = None) -> Any:
        return self.torch.argmin(a, dim=_dim(axis))

    def argmax(self, a: Any, axis: Any = None) -> Any:
        return self.torch.argmax(a, dim=_dim(axis))

    def count_nonzero(self, a: Any, axis: Any = None) -> Any:
        return self.torch.count_nonzero(a, dim=_dim(axis))

    def cumprod(self, a: Any, axis: Any = -1) -> Any:
        return self.torch.cumprod(a, dim=_dim(axis))

    def cumsum(self, a: Any, axis: Any = -1) -> Any:
        return self.torch.cumsum(a, dim=_dim(axis))

    def flip(self, a: Any, axis: Any = -1) -> Any:
        dims = (axis,) if isinstance(axis, int) else tuple(axis)
        return self.torch.flip(a, dims=dims)

    # ------------------------------------------------------------------ #
    # Shape / gather / scatter
    # ------------------------------------------------------------------ #
    def concatenate(self, parts: Any, axis: int = 0) -> Any:
        return self.torch.cat(list(parts), dim=_dim(axis))

    def squeeze(self, a: Any, axis: Any = None) -> Any:
        if axis is None:
            return self.torch.squeeze(a)
        return self.torch.squeeze(a, dim=_dim(axis))

    def transpose(self, a: Any, axes: Any) -> Any:
        return a.permute(*axes)

    def take_along_axis(self, a: Any, indices: Any, axis: int) -> Any:
        return self.torch.take_along_dim(a, indices, dim=_dim(axis))

    def put_along_axis(self, a: Any, indices: Any, values: Any, axis: int) -> None:
        if not isinstance(values, self.torch.Tensor):
            values = self.torch.as_tensor(values, dtype=a.dtype, device=a.device)
        a.scatter_(_dim(axis), indices, values.expand_as(indices).to(a.dtype))

    def repeat(self, a: Any, repeats: Any, axis: Any = None) -> Any:
        if not isinstance(repeats, (int, self.torch.Tensor)):
            repeats = self.torch.as_tensor(
                np.asarray(repeats), device=self.device
            )
        return self.torch.repeat_interleave(a, repeats, dim=_dim(axis))

    def __getattr__(self, name: str) -> Any:
        return getattr(self.torch, name)

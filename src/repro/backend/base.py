"""The :class:`ArrayBackend` contract every named backend implements.

A backend bundles an *array namespace* (``xp``) with the small amount of
metadata the kernels need to dispatch correctly.  The namespace is the
NumPy API surface — for NumPy and CuPy it is literally the module; for
torch it is a thin adapter (:mod:`repro.backend.torch_adapter`) mapping the
same function names onto tensors.  Ported kernels follow one rule so that
every backend can serve them: **call ``xp.<function>(...)``, never array
methods that differ between libraries** (``.copy()``, ``.max(axis=...)``,
``.astype(...)`` are spelled ``xp.copy`` / ``xp.amax`` / ``xp.asarray(...,
dtype=...)``).  Shape-and-indexing methods (``.reshape``, ``.shape``,
slicing, integer/boolean fancy indexing, ``[..., None]``) are part of the
common surface and stay method-style.

Guarantees (enforced by ``tests/test_backends.py``, documented in
``docs/backends.md``):

* integer / cycle state is **bit-identical** to NumPy on every backend;
* float kernels are bit-identical where ``exact`` is true (NumPy itself,
  and the numba backend — whose tensor namespace *is* NumPy) and pinned
  within a documented tolerance otherwise (GPU libraries may fuse or
  reassociate float arithmetic);
* a backend whose optional dependency is missing raises
  :class:`~repro.errors.BackendUnavailableError` at construction and is
  reported (not hidden) by :func:`repro.backend.available`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = ["ArrayBackend"]


@dataclass(frozen=True)
class ArrayBackend:
    """One named array backend: a namespace plus dispatch metadata.

    Attributes
    ----------
    name:
        Registry name (``"numpy"``, ``"numba"``, ``"cupy"``, ``"torch"``).
    xp:
        The array namespace the ported kernels call into.
    version:
        Version string of the backing library.
    device:
        ``"cpu"`` or ``"cuda"`` — where ``xp`` arrays live.
    jit:
        True when the *scalar fallbacks* (the NoC serve loop and resume
        replay) should run through their numba-compiled variants.  Tensor
        kernels are unaffected (the numba backend's ``xp`` is NumPy).
    exact:
        True when float tensor kernels are bit-identical to the NumPy
        reference (integer/cycle state is bit-identical on *every*
        backend regardless).
    reduceat_min / reduceat_add:
        Segment-reduction primitives ``(array, starts, axis) -> reduced``
        with NumPy ``ufunc.reduceat`` semantics, or ``None`` when the
        library has no equivalent — kernels then fall back to the dense
        per-degree-group path.
    """

    name: str
    xp: Any
    version: str
    device: str = "cpu"
    jit: bool = False
    exact: bool = True
    reduceat_min: Callable[..., Any] | None = field(default=None, repr=False)
    reduceat_add: Callable[..., Any] | None = field(default=None, repr=False)
    _to_numpy: Callable[[Any], np.ndarray] | None = field(default=None, repr=False)

    @property
    def supports_segments(self) -> bool:
        """Whether the flat-edge segment-reduction kernels can run here."""
        return self.reduceat_min is not None and self.reduceat_add is not None

    def asarray(self, values: Any, dtype: Any = None) -> Any:
        """Lift ``values`` (host array or device array) into this namespace."""
        if dtype is None:
            return self.xp.asarray(values)
        return self.xp.asarray(values, dtype=dtype)

    def to_numpy(self, values: Any) -> np.ndarray:
        """Bring a namespace array back to a host :class:`numpy.ndarray`."""
        if self._to_numpy is None:
            return np.asarray(values)
        return self._to_numpy(values)

    @property
    def key(self) -> tuple[str, bool]:
        """Hashable identity used by calibration caches (name, jit)."""
        return (self.name, self.jit)

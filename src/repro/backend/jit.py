"""Numba compilation helper for the scalar-fallback kernels.

The NoC scalar fallbacks (:mod:`repro.noc.engine_jit`) are written in
*nopython-compatible* style: plain Python loops over preallocated NumPy
arrays, no lists-of-lists, no closures, no object-mode anything.  That
style is the whole trick — the exact same function body runs under the
plain interpreter (slowly, but bit-identically), so the differential suite
can validate the algorithm on hosts without numba, and
:func:`maybe_compile` merely makes it fast where numba exists.

Compilation is cached per function, and the first call per signature pays
numba's compile cost — benchmarks report that warm-up separately from
steady state (see ``benchmarks/bench_backends.py`` and the caveats section
of ``docs/backends.md``).
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["maybe_compile", "numba_available"]

_F = TypeVar("_F", bound=Callable)

#: Compiled variants, keyed by the original function object.
_COMPILED: dict[Callable, Callable] = {}


def numba_available() -> bool:
    """Whether ``numba.njit`` can be imported on this host."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def maybe_compile(func: _F) -> _F:
    """Return the ``numba.njit``-compiled variant of ``func`` if numba is
    importable, else ``func`` itself.

    ``cache=True`` persists the compiled machine code across processes so a
    service restart does not re-pay compilation; ``nogil=True`` lets the
    thread-pool decode paths overlap compiled regions.
    """
    compiled = _COMPILED.get(func)
    if compiled is not None:
        return compiled
    try:
        from numba import njit
    except ImportError:
        _COMPILED[func] = func
        return func
    compiled = njit(cache=True, nogil=True)(func)
    _COMPILED[func] = compiled
    return compiled

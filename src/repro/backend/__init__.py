"""Pluggable array-backend layer: one kernel surface, many array libraries.

The hot kernels (LDPC check-node updates, BatchBCJR recursions, NoC scalar
fallbacks) are written against an *array namespace* ``xp`` instead of a
hard-coded ``numpy`` import, dgl-style.  This package is the registry that
names those namespaces and the selection machinery that picks one per run:

* :func:`use` — ``repro.backend.use("numpy")`` selects a backend for the
  process (or, used as a context manager, for a ``with`` block);
* the ``REPRO_BACKEND`` environment variable — consulted whenever no
  explicit :func:`use` selection is in force;
* per-call overrides — the batch engines accept ``backend=`` arguments
  resolved through :func:`resolve`, so one decoder can run on a GPU
  backend while the rest of the process stays on NumPy.

Registered backends: ``numpy`` (always available, the reference), ``numba``
(NumPy tensors + JIT-compiled scalar fallbacks), ``cupy`` and ``torch``
(GPU tensor namespaces).  Only NumPy is required; the optional three raise
:class:`~repro.errors.BackendUnavailableError` when their package is not
installed, and every consumer of this API (tests, benchmarks, the
``python -m repro.backend`` CLI) treats that as "skip", never "fail".

Guarantees per backend are documented in ``docs/backends.md`` and enforced
by ``tests/test_backends.py``.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Union

import numpy as np

from repro.backend.base import ArrayBackend
from repro.errors import BackendUnavailableError, ConfigurationError

__all__ = [
    "ArrayBackend",
    "BackendLike",
    "active",
    "available",
    "backend",
    "names",
    "resolve",
    "use",
    "xp",
]

#: Anything :func:`resolve` accepts: a registry name, a constructed backend,
#: or ``None`` for "whatever is active".
BackendLike = Union[str, ArrayBackend, None]


# --------------------------------------------------------------------------- #
# Factories — one per registered name.  Each either returns a constructed
# ArrayBackend or raises BackendUnavailableError naming the missing package.
# --------------------------------------------------------------------------- #
def _build_numpy() -> ArrayBackend:
    return ArrayBackend(
        name="numpy",
        xp=np,
        version=np.__version__,
        reduceat_min=np.minimum.reduceat,
        reduceat_add=np.add.reduceat,
    )


def _build_numba() -> ArrayBackend:
    try:
        import numba
    except ImportError as exc:
        raise BackendUnavailableError(
            "backend 'numba' requires the optional 'numba' package "
            "(pip install numba); tensor kernels would run on NumPy either "
            "way — numba only accelerates the scalar fallbacks"
        ) from exc
    # Tensor kernels run on plain NumPy; jit=True routes the NoC scalar
    # fallbacks through their compiled variants (repro.backend.jit).
    return ArrayBackend(
        name="numba",
        xp=np,
        version=numba.__version__,
        jit=True,
        reduceat_min=np.minimum.reduceat,
        reduceat_add=np.add.reduceat,
    )


def _build_cupy() -> ArrayBackend:
    try:
        import cupy
    except ImportError as exc:
        raise BackendUnavailableError(
            "backend 'cupy' requires the optional 'cupy' package "
            "(pip install cupy-cuda12x or the wheel matching your CUDA)"
        ) from exc
    try:
        if cupy.cuda.runtime.getDeviceCount() < 1:
            raise RuntimeError("no CUDA device")
    except Exception as exc:
        raise BackendUnavailableError(
            "backend 'cupy' is installed but no usable CUDA device was found"
        ) from exc
    # cupy has no ufunc.reduceat, so segment kernels fall back to the dense
    # per-degree-group path (supports_segments is False).
    return ArrayBackend(
        name="cupy",
        xp=cupy,
        version=cupy.__version__,
        device="cuda",
        exact=False,
        _to_numpy=cupy.asnumpy,
    )


def _build_torch() -> ArrayBackend:
    try:
        import torch
    except ImportError as exc:
        raise BackendUnavailableError(
            "backend 'torch' requires the optional 'torch' package "
            "(pip install torch)"
        ) from exc
    from repro.backend.torch_adapter import TorchNamespace

    device = "cuda" if torch.cuda.is_available() else "cpu"
    return ArrayBackend(
        name="torch",
        xp=TorchNamespace(torch, device),
        version=torch.__version__,
        device=device,
        exact=False,
        _to_numpy=lambda t: t.detach().cpu().numpy(),
    )


_FACTORIES: dict[str, Callable[[], ArrayBackend]] = {
    "numpy": _build_numpy,
    "numba": _build_numba,
    "cupy": _build_cupy,
    "torch": _build_torch,
}

#: Constructed backends, cached per name.  Failures are *not* cached — a
#: package installed mid-process (e.g. a test harness injecting a stub)
#: becomes visible on the next lookup.
_CACHE: dict[str, ArrayBackend] = {}
_CACHE_LOCK = threading.Lock()

#: Explicit :func:`use` selection; ``None`` defers to ``REPRO_BACKEND`` /
#: the numpy default.  Read lazily so the env var is honoured even when it
#: is set after this module imports.
_SELECTED: str | None = None


def names() -> tuple[str, ...]:
    """Every registered backend name, available or not."""
    return tuple(_FACTORIES)


def backend(name: str) -> ArrayBackend:
    """Construct (or return the cached) backend for ``name``.

    Raises
    ------
    ConfigurationError
        For a name that is not registered at all — the message lists the
        valid choices.
    BackendUnavailableError
        For a registered name whose optional dependency is missing (a
        subclass of :class:`ConfigurationError`, so a single ``except``
        catches both; the differential suite catches *only* this one to
        skip).
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown array backend {name!r}; valid choices: "
            + ", ".join(sorted(_FACTORIES))
        )
    cached = _CACHE.get(name)  # lock-free fast path for the hot resolve()
    if cached is not None:
        return cached
    with _CACHE_LOCK:
        cached = _CACHE.get(name)
        if cached is not None:
            return cached
        built = factory()
        _CACHE[name] = built
        return built


def available() -> tuple[str, ...]:
    """Names of the backends that construct successfully on this host."""
    ready = []
    for name in _FACTORIES:
        try:
            backend(name)
        except BackendUnavailableError:
            continue
        ready.append(name)
    return tuple(ready)


def active() -> ArrayBackend:
    """The backend in force: :func:`use` selection, else ``REPRO_BACKEND``,
    else ``numpy``."""
    name = _SELECTED or os.environ.get("REPRO_BACKEND") or "numpy"
    return backend(name)


def xp():
    """The active backend's array namespace (``repro.backend.xp().abs(...)``)."""
    return active().xp


class _Selection:
    """Return value of :func:`use`: already applied, optionally scoped.

    ``use("numba")`` alone selects for the rest of the process;
    ``with use("numba"): ...`` restores the previous selection on exit.
    """

    def __init__(self, name: str, previous: str | None):
        self.backend = backend(name)  # validate (and cache) eagerly
        self._previous = previous

    def __enter__(self) -> ArrayBackend:
        return self.backend

    def __exit__(self, *exc_info) -> None:
        global _SELECTED
        _SELECTED = self._previous


def use(name: str) -> _Selection:
    """Select the process-wide backend (validating the name eagerly).

    Returns a context manager so a scoped selection is one ``with`` away;
    ignoring the return value simply leaves the selection in force.
    """
    global _SELECTED
    selection = _Selection(name, _SELECTED)
    _SELECTED = name
    return selection


def resolve(override: BackendLike = None) -> ArrayBackend:
    """Resolve a per-call ``backend=`` override to a constructed backend.

    ``None`` means the active selection; a string is looked up in the
    registry; an :class:`ArrayBackend` passes through untouched.
    """
    if override is None:
        return active()
    if isinstance(override, ArrayBackend):
        return override
    if isinstance(override, str):
        return backend(override)
    raise ConfigurationError(
        f"backend override must be a name, an ArrayBackend or None, "
        f"got {type(override).__name__}"
    )

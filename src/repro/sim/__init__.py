"""Batched Monte-Carlo simulation engine for the functional decoders.

The paper's functional claims (layered decoding "nearly doubles the
convergence speed", the WiMAX BER behaviour backing the architectural
choices) rest on Monte-Carlo simulation over many frames.  The per-frame
decoders in :mod:`repro.ldpc` pay Python interpreter overhead for every
check node of every frame; this package amortises that overhead over a
*batch* axis so ensemble simulation runs at NumPy speed:

* :class:`~repro.sim.edges.EdgeIndex` — flat edge-index arrays precomputed
  from a :class:`~repro.ldpc.hmatrix.ParityCheckMatrix`, grouping checks and
  variables by degree so message passing becomes dense tensor arithmetic,
* :mod:`~repro.sim.kernels` — vectorised check-node updates (normalized
  min-sum, paper eq. (11), and the exact sum-product tanh rule) operating on
  ``(..., degree)`` arrays,
* :class:`~repro.sim.batch.BatchFloodingDecoder` /
  :class:`~repro.sim.batch.BatchLayeredDecoder` — schedule implementations
  over ``(batch, n)`` LLR arrays with per-frame early termination; the
  per-frame decoders in :mod:`repro.ldpc` delegate to these with ``batch=1``,
* :class:`~repro.sim.runner.BerRunner` — streams frames through the
  modulate → AWGN → demap → decode chain in configurable batch sizes and
  reports BER/FER with Wilson confidence intervals.

See ``docs/batching.md`` for the memory layout and guidance on batch sizes.
"""

from repro.sim.batch import (
    BatchDecodeResult,
    BatchDecoder,
    BatchFloodingDecoder,
    BatchLayeredDecoder,
)
from repro.sim.edges import EdgeIndex
from repro.sim.kernels import min_sum_update, sum_product_update
from repro.sim.runner import BerPoint, BerRunner
from repro.sim.stats import wilson_interval

__all__ = [
    "BatchDecodeResult",
    "BatchDecoder",
    "BatchFloodingDecoder",
    "BatchLayeredDecoder",
    "BerPoint",
    "BerRunner",
    "EdgeIndex",
    "min_sum_update",
    "sum_product_update",
    "wilson_interval",
]

"""Batched Monte-Carlo simulation engine for the functional decoders.

The paper's functional claims (layered decoding "nearly doubles the
convergence speed", the WiMAX BER behaviour backing the architectural
choices) rest on Monte-Carlo simulation over many frames.  The per-frame
decoders in :mod:`repro.ldpc` pay Python interpreter overhead for every
check node of every frame; this package amortises that overhead over a
*batch* axis so ensemble simulation runs at NumPy speed:

* :class:`~repro.sim.edges.EdgeIndex` — flat edge-index arrays precomputed
  from a :class:`~repro.ldpc.hmatrix.ParityCheckMatrix`, grouping checks and
  variables by degree so message passing becomes dense tensor arithmetic,
* :mod:`~repro.sim.kernels` — vectorised check-node updates (normalized
  min-sum, paper eq. (11), and the exact sum-product tanh rule) operating on
  ``(..., degree)`` arrays,
* :class:`~repro.sim.batch.BatchFloodingDecoder` /
  :class:`~repro.sim.batch.BatchLayeredDecoder` — schedule implementations
  over ``(batch, n)`` LLR arrays with per-frame early termination; the
  per-frame decoders in :mod:`repro.ldpc` delegate to these with ``batch=1``,
* :mod:`~repro.sim.turbo_batch` — the turbo half of the multi-standard
  decoder: :class:`~repro.sim.turbo_batch.BatchBCJR` runs the duo-binary
  alpha/beta/gamma recursions as dense ``(batch, n_couples, 8, 4)`` tensor
  ops, and :class:`~repro.sim.turbo_batch.BatchTurboDecoder` alternates the
  two SISO activations with per-frame early exit on decision stability; the
  per-frame decoders in :mod:`repro.turbo` delegate with ``batch=1``,
* :class:`~repro.sim.runner.BerRunner` — streams frames through the
  modulate → AWGN → demap → decode chain in configurable batch sizes for
  *either* code family (any :class:`~repro.sim.batch.BatchDecoder`) and
  reports BER/FER with Wilson confidence intervals.

See ``docs/batching.md`` (LDPC) and ``docs/turbo-batching.md`` (turbo) for
the memory layouts and guidance on batch sizes.
"""

from repro.sim.batch import (
    BatchDecodeResult,
    BatchDecoder,
    BatchFloodingDecoder,
    BatchLayeredDecoder,
    QuantizedBatchDecoder,
)
from repro.sim.edges import EdgeIndex
from repro.sim.kernels import min_sum_update, sum_product_update
from repro.sim.runner import CHANNEL_FACTORIES, BerPoint, BerRunner, resolve_code_rate
from repro.sim.stats import wilson_interval
from repro.sim.turbo_batch import (
    BatchBCJR,
    BatchBCJRResult,
    BatchTurboDecoder,
    BatchTurboResult,
)

__all__ = [
    "BatchBCJR",
    "BatchBCJRResult",
    "BatchDecodeResult",
    "BatchDecoder",
    "BatchFloodingDecoder",
    "BatchLayeredDecoder",
    "BatchTurboDecoder",
    "BatchTurboResult",
    "BerPoint",
    "BerRunner",
    "CHANNEL_FACTORIES",
    "EdgeIndex",
    "QuantizedBatchDecoder",
    "min_sum_update",
    "resolve_code_rate",
    "sum_product_update",
    "wilson_interval",
]

"""Vectorised check-node update kernels.

Both kernels operate on arrays whose *last* axis enumerates the edges of one
check (the check degree ``d``); any number of leading axes is allowed.  The
batch decoders call them with ``(batch, n_checks_d, d)`` tensors (flooding,
one call per degree group) or ``(batch, d)`` slices (layered, one call per
check), and the per-frame decoders reuse exactly the same code with a single
leading axis so sequential and batched results are bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DecodingError

#: Saturation applied to the tanh-domain leave-one-out product before the
#: final ``arctanh`` (keeps the output finite for near-certain inputs).
_TANH_CLIP = 0.999999999999


def _check_degree_axis(q: np.ndarray) -> np.ndarray:
    arr = np.asarray(q, dtype=np.float64)
    if arr.ndim == 0 or arr.shape[-1] < 2:
        raise DecodingError(
            "check update needs at least two edge messages on the last axis"
        )
    return arr


def min_sum_update(q: np.ndarray, scaling: float = 0.75) -> np.ndarray:
    """Normalized-min-sum check update (paper eq. (11)), vectorised.

    Parameters
    ----------
    q:
        Variable-to-check messages ``Q_{lk}``, shape ``(..., d)`` with the
        edges of each check on the last axis.
    scaling:
        Normalisation factor ``sigma <= 1`` (0.75 in the paper's PEs).

    Returns
    -------
    numpy.ndarray
        Check-to-variable messages ``R_{lk}^{new}`` of the same shape: each
        edge sees ``sigma * prod_{n != k} sgn(Q_{ln}) * min_{n != k} |Q_{ln}|``.
        Matches :func:`repro.ldpc.checknode.min_sum_check_update` bit-for-bit
        on a single check (same first-occurrence ``argmin`` tie-breaking).
    """
    arr = _check_degree_axis(q)
    degree = arr.shape[-1]
    magnitudes = np.abs(arr)
    signs = np.where(arr < 0, -1.0, 1.0)
    argmin1 = magnitudes.argmin(axis=-1)
    min1 = np.take_along_axis(magnitudes, argmin1[..., None], axis=-1)[..., 0]
    masked = magnitudes.copy()
    np.put_along_axis(masked, argmin1[..., None], np.inf, axis=-1)
    min2 = masked.min(axis=-1)
    # Magnitude seen by edge k is the min over the *other* edges: min2 for
    # the edge holding the global minimum, min1 everywhere else.
    is_argmin = np.arange(degree) == argmin1[..., None]
    result_magnitudes = np.where(is_argmin, min2[..., None], min1[..., None])
    # Sign seen by edge k excludes its own sign (dividing by +-1 == multiplying).
    result_signs = np.prod(signs, axis=-1)[..., None] * signs
    return scaling * result_signs * result_magnitudes


def sum_product_update(q: np.ndarray) -> np.ndarray:
    """Exact sum-product (tanh-rule) check update, vectorised and stable.

    Uses exclusive prefix/suffix products of ``tanh(Q/2)`` for the
    leave-one-out product instead of dividing the total product by each
    factor.  The factors all have magnitude ``<= 1`` so the partial products
    only shrink — there is no overflow and no division by a near-zero
    ``tanh``, which removes the O(d^2) fallback loop the division approach
    needed when any message was close to zero.

    Parameters
    ----------
    q:
        Variable-to-check messages, shape ``(..., d)`` with the edges of each
        check on the last axis.  Values are clipped to ``[-30, 30]`` first
        (``tanh`` saturates to machine precision well before that).

    Returns
    -------
    numpy.ndarray
        ``2 * arctanh(prod_{n != k} tanh(Q_{ln} / 2))`` per edge, with the
        product clipped away from ``+-1`` so the output stays finite.
    """
    arr = _check_degree_axis(q)
    clipped = np.clip(arr, -30.0, 30.0)
    tanh_half = np.tanh(clipped / 2.0)
    ones = np.ones_like(tanh_half[..., :1])
    # prefix[..., k] = prod of tanh_half[..., :k]; suffix[..., k] = prod of
    # tanh_half[..., k+1:]; their product is the leave-one-out product.
    prefix = np.concatenate(
        [ones, np.cumprod(tanh_half[..., :-1], axis=-1)], axis=-1
    )
    suffix = np.concatenate(
        [np.cumprod(tanh_half[..., :0:-1], axis=-1)[..., ::-1], ones], axis=-1
    )
    leave_one_out = np.clip(prefix * suffix, -_TANH_CLIP, _TANH_CLIP)
    return 2.0 * np.arctanh(leave_one_out)

"""Vectorised check-node update kernels, written against the backend layer.

Both dense kernels operate on arrays whose *last* axis enumerates the edges
of one check (the check degree ``d``); any number of leading axes is
allowed.  The batch decoders call them with ``(batch, n_checks_d, d)``
tensors (flooding, one call per degree group) or ``(batch, d)`` slices
(layered, one call per check), and the per-frame decoders reuse exactly the
same code with a single leading axis so sequential and batched results are
bit-identical.

Every kernel takes an optional ``backend=`` override (a name, an
:class:`~repro.backend.ArrayBackend`, or ``None`` for the active selection
— see :mod:`repro.backend`) and only touches the namespace through
``xp.<function>(...)`` calls, so the same source serves NumPy, CuPy and
torch.  :func:`min_sum_update_segments` additionally offers a
segment-reduction formulation over :class:`~repro.sim.edges.EdgeIndex` flat
edges for backends exposing ``ufunc.reduceat``-style primitives — one
kernel launch for *all* checks regardless of their degrees, instead of one
dense call per degree group.

Sign convention (pinned by ``tests/test_backends.py``): the sign of an LLR
is its IEEE-754 sign *bit* (``xp.signbit``), so ``-0.0`` counts as negative
— matching the scalar reference in :mod:`repro.ldpc.checknode`.  The
previous ``arr < 0`` formulation silently treated ``-0.0`` as positive,
which made the sign product depend on how an exactly-zero magnitude was
produced.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, BackendLike, resolve
from repro.errors import DecodingError

#: Saturation applied to the tanh-domain leave-one-out product before the
#: final ``arctanh`` (keeps the output finite for near-certain inputs).
_TANH_CLIP = 0.999999999999


def _check_degree_axis(q, b: ArrayBackend):
    arr = b.asarray(q, dtype=np.float64)
    if arr.ndim == 0 or arr.shape[-1] < 2:
        raise DecodingError(
            "check update needs at least two edge messages on the last axis"
        )
    return arr


def min_sum_update(q, scaling: float = 0.75, backend: BackendLike = None):
    """Normalized-min-sum check update (paper eq. (11)), vectorised.

    Parameters
    ----------
    q:
        Variable-to-check messages ``Q_{lk}``, shape ``(..., d)`` with the
        edges of each check on the last axis.
    scaling:
        Normalisation factor ``sigma <= 1`` (0.75 in the paper's PEs).
    backend:
        Array backend override (name / instance / ``None`` for active).

    Returns
    -------
    array
        Check-to-variable messages ``R_{lk}^{new}`` of the same shape: each
        edge sees ``sigma * prod_{n != k} sgn(Q_{ln}) * min_{n != k} |Q_{ln}|``.
        Matches :func:`repro.ldpc.checknode.min_sum_check_update` bit-for-bit
        on a single check (same first-occurrence ``argmin`` tie-breaking,
        same ``signbit`` convention for ``-0.0``).
    """
    b = resolve(backend)
    xp = b.xp
    arr = _check_degree_axis(q, b)
    degree = arr.shape[-1]
    magnitudes = xp.abs(arr)
    signs = xp.where(xp.signbit(arr), -1.0, 1.0)
    argmin1 = xp.argmin(magnitudes, axis=-1)
    min1 = xp.take_along_axis(magnitudes, argmin1[..., None], axis=-1)[..., 0]
    masked = xp.copy(magnitudes)
    xp.put_along_axis(masked, argmin1[..., None], xp.inf, axis=-1)
    min2 = xp.amin(masked, axis=-1)
    # Magnitude seen by edge k is the min over the *other* edges: min2 for
    # the edge holding the global minimum, min1 everywhere else.
    is_argmin = xp.arange(degree) == argmin1[..., None]
    result_magnitudes = xp.where(is_argmin, min2[..., None], min1[..., None])
    # Sign seen by edge k excludes its own sign (dividing by +-1 == multiplying).
    result_signs = xp.prod(signs, axis=-1)[..., None] * signs
    return scaling * result_signs * result_magnitudes


def min_sum_update_segments(
    v2c,
    row_ptr: np.ndarray,
    scaling: float = 0.75,
    backend: BackendLike = None,
):
    """Normalized-min-sum over *flat* edges, one segment per check.

    The segment-reduction twin of :func:`min_sum_update`: instead of one
    dense ``(batch, n_checks_d, d)`` call per degree group, the whole
    ``(batch, n_edges)`` edge array is reduced in place using the backend's
    ``reduceat`` primitives (``ArrayBackend.reduceat_min`` /
    ``reduceat_add``), with checks delimited by ``row_ptr`` exactly as in
    :class:`~repro.sim.edges.EdgeIndex`.  Bit-identical to the dense kernel
    on every input: first-occurrence tie-breaking is reproduced by counting
    minima within each segment, and the sign product is reproduced from the
    parity of the per-segment negative count (``signbit`` convention, so
    ``-0.0`` counts as negative).

    Parameters
    ----------
    v2c:
        ``(batch, n_edges)`` variable-to-check messages, row-major flat
        edges.
    row_ptr:
        ``(n_rows + 1,)`` segment boundaries (``EdgeIndex.row_ptr``).
    scaling:
        Normalisation factor ``sigma <= 1``.
    backend:
        Array backend override; must satisfy ``supports_segments`` (the
        decoders check this and fall back to the dense per-group path).
    """
    b = resolve(backend)
    if not b.supports_segments:
        raise DecodingError(
            f"backend {b.name!r} has no segment-reduction primitives; "
            "use the dense min_sum_update path"
        )
    xp = b.xp
    arr = b.asarray(v2c, dtype=np.float64)
    if arr.ndim != 2:
        raise DecodingError(
            f"segment min-sum expects a (batch, n_edges) array, got shape {arr.shape}"
        )
    row_ptr = np.asarray(row_ptr, dtype=np.int64)
    if row_ptr.ndim != 1 or row_ptr.size < 2 or int(row_ptr[-1]) != arr.shape[-1]:
        raise DecodingError("row_ptr does not delimit the flat edge axis")
    starts = row_ptr[:-1]
    degrees = np.diff(row_ptr)
    if int(degrees.min()) < 2:
        raise DecodingError(
            "check update needs at least two edge messages per check"
        )

    magnitudes = xp.abs(arr)
    signs = xp.where(xp.signbit(arr), -1.0, 1.0)

    min1_seg = b.reduceat_min(magnitudes, starts, axis=-1)
    min1 = xp.repeat(min1_seg, degrees, axis=-1)
    # First occurrence of the per-segment minimum: count matching edges with
    # a running sum, subtract the count accumulated before each segment.
    is_min = magnitudes == min1
    hits = xp.cumsum(xp.asarray(is_min, dtype=np.int64), axis=-1)
    before = hits[:, starts] - xp.asarray(is_min[:, starts], dtype=np.int64)
    is_first = is_min & ((hits - xp.repeat(before, degrees, axis=-1)) == 1)

    masked = xp.where(is_first, xp.inf, magnitudes)
    min2_seg = b.reduceat_min(masked, starts, axis=-1)
    min2 = xp.repeat(min2_seg, degrees, axis=-1)
    result_magnitudes = xp.where(is_first, min2, min1)

    # Per-segment sign product from the parity of the negative count: the
    # dense kernel's prod of +-1.0 floats is exact, so parity matches it
    # bit-for-bit.
    negatives = b.reduceat_add(xp.asarray(xp.signbit(arr), dtype=np.int64), starts, axis=-1)
    total_signs = xp.where((negatives & 1) == 1, -1.0, 1.0)
    result_signs = xp.repeat(total_signs, degrees, axis=-1) * signs
    return scaling * result_signs * result_magnitudes


def sum_product_update(q, backend: BackendLike = None):
    """Exact sum-product (tanh-rule) check update, vectorised and stable.

    Uses exclusive prefix/suffix products of ``tanh(Q/2)`` for the
    leave-one-out product instead of dividing the total product by each
    factor.  The factors all have magnitude ``<= 1`` so the partial products
    only shrink — there is no overflow and no division by a near-zero
    ``tanh``, which removes the O(d^2) fallback loop the division approach
    needed when any message was close to zero.

    Parameters
    ----------
    q:
        Variable-to-check messages, shape ``(..., d)`` with the edges of each
        check on the last axis.  Values are clipped to ``[-30, 30]`` first
        (``tanh`` saturates to machine precision well before that).
    backend:
        Array backend override (name / instance / ``None`` for active).

    Returns
    -------
    array
        ``2 * arctanh(prod_{n != k} tanh(Q_{ln} / 2))`` per edge, with the
        product clipped away from ``+-1`` so the output stays finite.
    """
    b = resolve(backend)
    xp = b.xp
    arr = _check_degree_axis(q, b)
    clipped = xp.clip(arr, -30.0, 30.0)
    tanh_half = xp.tanh(clipped / 2.0)
    ones = xp.ones_like(tanh_half[..., :1])
    # prefix[..., k] = prod of tanh_half[..., :k]; suffix[..., k] = prod of
    # tanh_half[..., k+1:]; their product is the leave-one-out product.
    prefix = xp.concatenate(
        [ones, xp.cumprod(tanh_half[..., :-1], axis=-1)], axis=-1
    )
    suffix = xp.concatenate(
        [xp.flip(xp.cumprod(xp.flip(tanh_half[..., 1:], axis=-1), axis=-1), axis=-1), ones],
        axis=-1,
    )
    leave_one_out = xp.clip(prefix * suffix, -_TANH_CLIP, _TANH_CLIP)
    return 2.0 * xp.arctanh(leave_one_out)

"""Batched flooding and layered decoders over ``(batch, n)`` LLR arrays.

Both decoders implement the :class:`BatchDecoder` protocol: ``decode_batch``
takes a ``(batch, n)`` array of channel LLRs (positive LLR means bit 0) and
returns per-frame hard decisions, a-posteriori LLRs, iteration counts and
convergence flags.  Frames that satisfy every parity check leave the active
set immediately (per-frame early exit), so a batch costs only as many
iterations as its slowest member.

The per-frame decoders :class:`repro.ldpc.flooding.FloodingDecoder` and
:class:`repro.ldpc.layered.LayeredMinSumDecoder` delegate to these classes
with ``batch=1``; the property tests in ``tests/test_sim_batch.py`` pin down
that stacking frames into a batch changes nothing — same hard bits, same
iteration counts, same convergence flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.backend import BackendLike, resolve
from repro.channel.quantize import CHANNEL_LLR_SPEC, EXTRINSIC_SPEC, LLRQuantizer
from repro.errors import DecodingError
from repro.sim.edges import EdgeIndex
from repro.sim.kernels import (
    min_sum_update,
    min_sum_update_segments,
    sum_product_update,
)

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.ldpc
    from repro.ldpc.hmatrix import ParityCheckMatrix

_KERNELS = ("sum-product", "min-sum")


@dataclass
class BatchDecodeResult:
    """Outcome of one batched decode.

    Attributes
    ----------
    hard_bits:
        ``(batch, n)`` int8 hard decisions (``LLR < 0 -> bit 1``).
    llrs:
        ``(batch, n)`` final a-posteriori LLRs.
    iterations:
        ``(batch,)`` iterations each frame actually ran (a frame that
        early-exits at iteration ``i`` reports ``i``).
    converged:
        ``(batch,)`` per-frame convergence flags (see each decoder for the
        exact semantics, which mirror the per-frame decoders).
    syndrome_weights:
        ``(batch,)`` number of unsatisfied checks of the final hard decision.
    unsatisfied_history:
        One list per frame of the unsatisfied-check count after every
        iteration that frame ran.
    """

    hard_bits: np.ndarray
    llrs: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    syndrome_weights: np.ndarray
    unsatisfied_history: list[list[int]]

    @property
    def batch_size(self) -> int:
        """Number of frames in this result."""
        return int(self.hard_bits.shape[0])

    def frame(self, index: int) -> tuple[np.ndarray, int, bool]:
        """Extract frame ``index`` as ``(hard_bits, iterations, converged)``.

        The bits are a fresh copy, so a caller (e.g. the decode service
        resolving one client's future) can hold them after the batch result
        is dropped without pinning the whole ``(batch, n)`` array.
        """
        return (
            self.hard_bits[index].copy(),
            int(self.iterations[index]),
            bool(self.converged[index]),
        )


@runtime_checkable
class BatchDecoder(Protocol):
    """Protocol shared by every batched decoder of either code family.

    A ``BatchDecoder`` decodes ``(batch, n_bits)`` channel-LLR arrays in one
    call and returns a result carrying at least ``hard_bits`` (the per-frame
    decisions — whole codewords for the LDPC decoders, information bits for
    :class:`repro.sim.turbo_batch.BatchTurboDecoder`), ``iterations`` and
    ``converged`` arrays; :class:`repro.sim.runner.BerRunner` only relies on
    this interface.  A decoder whose decisions cover only the information
    bits declares it with a truthy ``decides_info_bits`` class attribute
    (absent/False means codeword decisions).
    """

    @property
    def n_bits(self) -> int:
        """Channel-LLR length each frame must have (the codeword length)."""
        ...

    def decode_batch(self, channel_llrs: np.ndarray) -> "BatchDecodeResult":
        """Decode a ``(batch, n_bits)`` array of channel LLRs."""
        ...


def _validate_batch(llrs: np.ndarray, n_cols: int) -> np.ndarray:
    arr = np.asarray(llrs, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != n_cols:
        raise DecodingError(
            f"expected a (batch, {n_cols}) LLR array, got shape {arr.shape}"
        )
    return arr


class BatchFloodingDecoder:
    """Two-phase (flooding) BP decoder vectorised over frames *and* checks.

    One iteration is four dense tensor operations (paper Section II's
    two-phase schedule): gather the posterior onto the edges, subtract the
    previous check-to-variable messages, run the check kernel per degree
    group, scatter-accumulate back into the posterior.  ``converged`` latches
    as soon as a frame's hard decision satisfies every check, exactly like
    :class:`repro.ldpc.flooding.FloodingDecoder`.

    Parameters mirror the per-frame decoder: ``kernel`` selects the exact
    sum-product tanh rule or the normalized min-sum of paper eq. (11).
    ``backend`` is a per-decoder array-backend override (name /
    :class:`~repro.backend.ArrayBackend` / ``None`` for the process-wide
    selection); the control loop stays on host NumPy and only the check
    kernels run on the chosen backend, so a GPU backend pays a transfer per
    update — profitable only for large batches.  On backends with segment
    primitives the min-sum check phase runs as *one* flat segment-reduction
    kernel over all edges (bit-identical to the per-degree-group path) when
    the code has several check degrees.
    """

    def __init__(
        self,
        h: "ParityCheckMatrix",
        max_iterations: int = 20,
        kernel: str = "sum-product",
        scaling: float = 0.75,
        early_termination: bool = True,
        backend: BackendLike = None,
    ):
        if max_iterations <= 0:
            raise DecodingError(f"max_iterations must be positive, got {max_iterations}")
        if kernel not in _KERNELS:
            raise DecodingError(
                f"kernel must be 'sum-product' or 'min-sum', got {kernel!r}"
            )
        self._edges = EdgeIndex(h)
        self.max_iterations = int(max_iterations)
        self.kernel = kernel
        self.scaling = float(scaling)
        self.early_termination = bool(early_termination)
        self.backend = backend

    @property
    def n_bits(self) -> int:
        """Codeword length ``n`` of the code this decoder was built for."""
        return self._edges.n_cols

    def _check_update(self, v2c: np.ndarray) -> np.ndarray:
        """Apply the check kernel: ``(batch, n_edges)`` in and out."""
        b = resolve(self.backend)
        # One segment-reduction launch beats one dense launch per degree
        # group once there is more than one group to pay for.
        if (
            self.kernel == "min-sum"
            and b.supports_segments
            and len(self._edges.check_groups) > 1
        ):
            return b.to_numpy(
                min_sum_update_segments(
                    v2c, self._edges.row_ptr, scaling=self.scaling, backend=b
                )
            )
        out = np.empty_like(v2c)
        for group in self._edges.check_groups:
            q = v2c[:, group.edges]
            if self.kernel == "sum-product":
                out[:, group.edges] = b.to_numpy(sum_product_update(q, backend=b))
            else:
                out[:, group.edges] = b.to_numpy(
                    min_sum_update(q, scaling=self.scaling, backend=b)
                )
        return out

    def decode_batch(self, channel_llrs: np.ndarray) -> BatchDecodeResult:
        """Decode a ``(batch, n)`` array of channel LLRs with the flooding schedule."""
        llrs = _validate_batch(channel_llrs, self._edges.n_cols)
        batch = llrs.shape[0]
        edges = self._edges
        posterior = llrs.copy()
        iterations = np.zeros(batch, dtype=np.int64)
        converged = np.zeros(batch, dtype=bool)
        histories: list[list[int]] = [[] for _ in range(batch)]
        # Active working set: frames still decoding, compacted on early exit.
        act_idx = np.arange(batch)
        act_llrs = llrs.copy()
        act_post = llrs.copy()
        act_c2v = np.zeros((batch, edges.n_edges), dtype=np.float64)
        for iteration in range(self.max_iterations):
            if act_idx.size == 0:
                break
            # Variable-to-check phase: posterior minus own previous c2v.
            v2c = edges.gather(act_post) - act_c2v
            act_c2v = self._check_update(v2c)
            act_post = act_llrs + edges.accumulate_columns(act_c2v)
            unsatisfied = edges.unsatisfied_counts(act_post < 0)
            iterations[act_idx] = iteration + 1
            for local, frame in enumerate(act_idx):
                histories[frame].append(int(unsatisfied[local]))
            newly = unsatisfied == 0
            converged[act_idx[newly]] = True
            if self.early_termination and newly.any():
                posterior[act_idx[newly]] = act_post[newly]
                keep = ~newly
                act_idx = act_idx[keep]
                act_llrs = act_llrs[keep]
                act_post = act_post[keep]
                act_c2v = act_c2v[keep]
        posterior[act_idx] = act_post
        hard = (posterior < 0).astype(np.int8)
        return BatchDecodeResult(
            hard_bits=hard,
            llrs=posterior,
            iterations=iterations,
            converged=converged,
            syndrome_weights=edges.unsatisfied_counts(hard),
            unsatisfied_history=histories,
        )


class QuantizedBatchDecoder:
    """Fixed-point channel-LLR front-end around any :class:`BatchDecoder`.

    Round-trips every channel LLR through an
    :class:`~repro.channel.quantize.LLRQuantizer` (the paper's 7-bit/1-frac
    channel format by default, symmetric saturation) before handing the batch
    to the wrapped decoder, so the finite-precision *input* behaviour of the
    paper's datapath is simulable at scale with either code family —
    including :class:`~repro.sim.turbo_batch.BatchTurboDecoder`, which has no
    ``fixed_point`` mode of its own.  For the LDPC layered decoder's full
    internal fixed-point datapath (5-bit extrinsics too) combine this with
    ``BatchLayeredDecoder(fixed_point=True)``.

    The wrapper satisfies the :class:`BatchDecoder` protocol and forwards
    ``decides_info_bits``, so it drops into
    :class:`~repro.sim.runner.BerRunner` wherever the wrapped decoder did.
    """

    def __init__(self, decoder: BatchDecoder, quantizer: "LLRQuantizer | None" = None):
        if not isinstance(decoder, BatchDecoder):
            raise DecodingError(
                "QuantizedBatchDecoder wraps a BatchDecoder (needs n_bits and "
                f"decode_batch), got {type(decoder).__name__}"
            )
        self._decoder = decoder
        self.quantizer = (
            quantizer if quantizer is not None else LLRQuantizer(CHANNEL_LLR_SPEC)
        )
        if not isinstance(self.quantizer, LLRQuantizer):
            raise DecodingError("quantizer must be an LLRQuantizer")

    @property
    def n_bits(self) -> int:
        """Channel-LLR length of the wrapped decoder."""
        return self._decoder.n_bits

    @property
    def decides_info_bits(self) -> bool:
        """Mirror of the wrapped decoder's decision convention."""
        return bool(getattr(self._decoder, "decides_info_bits", False))

    @property
    def inner(self) -> BatchDecoder:
        """The wrapped decoder."""
        return self._decoder

    def decode_batch(self, channel_llrs: np.ndarray) -> BatchDecodeResult:
        """Quantise the channel LLRs, then decode with the wrapped decoder."""
        llrs = np.asarray(channel_llrs, dtype=np.float64)
        return self._decoder.decode_batch(self.quantizer.quantize_to_real(llrs))


class BatchLayeredDecoder:
    """Layered (horizontal-schedule) decoder vectorised over frames.

    The layered schedule of paper eqs. (6)-(11) is sequential over checks by
    construction — each check reads the a-posteriori LLRs the previous check
    just wrote — so the check loop remains a Python loop, but every step of
    it processes the whole batch at once: at batch 64 the per-check
    interpreter overhead is amortised 64x.

    ``converged`` matches :class:`repro.ldpc.layered.LayeredMinSumDecoder`:
    the latched "was ever a codeword" flag AND a zero final syndrome.

    Parameters
    ----------
    h:
        Parity-check matrix of the code.
    max_iterations:
        Maximum full iterations (every check once); the paper uses 10.
    scaling:
        Min-sum normalisation factor ``sigma`` (min-sum kernel only).
    kernel:
        ``"min-sum"`` (the paper's PEs, default) or ``"sum-product"``.
    fixed_point:
        Quantise channel/a-posteriori LLRs to the paper's 7-bit format and
        extrinsic R messages to the 5-bit format around every update.
    early_termination:
        Remove a frame from the active set as soon as its hard decision
        satisfies every parity check.
    backend:
        Per-decoder array-backend override for the check kernels (the
        schedule itself is sequential over checks and stays on host NumPy).
    """

    def __init__(
        self,
        h: "ParityCheckMatrix",
        max_iterations: int = 10,
        scaling: float = 0.75,
        kernel: str = "min-sum",
        fixed_point: bool = False,
        early_termination: bool = True,
        backend: BackendLike = None,
    ):
        if max_iterations <= 0:
            raise DecodingError(f"max_iterations must be positive, got {max_iterations}")
        if not 0.0 < scaling <= 1.0:
            raise DecodingError(f"scaling must be in (0, 1], got {scaling}")
        if kernel not in _KERNELS:
            raise DecodingError(
                f"kernel must be 'sum-product' or 'min-sum', got {kernel!r}"
            )
        self._edges = EdgeIndex(h)
        self.max_iterations = int(max_iterations)
        self.scaling = float(scaling)
        self.kernel = kernel
        self.fixed_point = bool(fixed_point)
        self.early_termination = bool(early_termination)
        self.backend = backend
        self._channel_quantizer = LLRQuantizer(CHANNEL_LLR_SPEC)
        self._extrinsic_quantizer = LLRQuantizer(EXTRINSIC_SPEC)

    @property
    def n_bits(self) -> int:
        """Codeword length ``n`` of the code this decoder was built for."""
        return self._edges.n_cols

    def _quantize_channel(self, llrs: np.ndarray) -> np.ndarray:
        if not self.fixed_point:
            return llrs.astype(np.float64)
        return self._channel_quantizer.quantize_to_real(llrs)

    def _row_update(self, q: np.ndarray, b=None) -> np.ndarray:
        b = resolve(self.backend) if b is None else b
        if self.kernel == "sum-product":
            r_new = b.to_numpy(sum_product_update(q, backend=b))
        else:
            r_new = b.to_numpy(min_sum_update(q, scaling=self.scaling, backend=b))
        if self.fixed_point:
            r_new = self._extrinsic_quantizer.quantize_to_real(r_new)
        return r_new

    def decode_batch(self, channel_llrs: np.ndarray) -> BatchDecodeResult:
        """Decode a ``(batch, n)`` array of channel LLRs with the layered schedule.

        Implements, for every check ``l`` and connected variable ``k`` (all
        frames in lockstep):

        * ``Q_lk = lambda_k - R_lk_old``                      (eq. 6)
        * ``R_lk_new = normalized min-sum over the other Q``  (eqs. 7-9, 11)
        * ``lambda_k = Q_lk + R_lk_new``                      (eq. 10)
        """
        llrs = _validate_batch(channel_llrs, self._edges.n_cols)
        batch = llrs.shape[0]
        edges = self._edges
        lam_out = self._quantize_channel(llrs).copy()
        iterations = np.zeros(batch, dtype=np.int64)
        converged = np.zeros(batch, dtype=bool)
        histories: list[list[int]] = [[] for _ in range(batch)]
        act_idx = np.arange(batch)
        act_lam = lam_out.copy()
        act_r = np.zeros((batch, edges.n_edges), dtype=np.float64)
        row_cols = edges.row_cols
        row_ptr = edges.row_ptr
        kernel_backend = resolve(self.backend)
        for iteration in range(self.max_iterations):
            if act_idx.size == 0:
                break
            for check in range(edges.n_rows):
                cols = row_cols[check]
                span = slice(row_ptr[check], row_ptr[check + 1])
                q_values = act_lam[:, cols] - act_r[:, span]
                r_new = self._row_update(q_values, kernel_backend)
                updated = q_values + r_new
                if self.fixed_point:
                    updated = self._channel_quantizer.quantize_to_real(updated)
                act_lam[:, cols] = updated
                act_r[:, span] = r_new
            unsatisfied = edges.unsatisfied_counts(act_lam < 0)
            iterations[act_idx] = iteration + 1
            for local, frame in enumerate(act_idx):
                histories[frame].append(int(unsatisfied[local]))
            newly = unsatisfied == 0
            converged[act_idx[newly]] = True
            if self.early_termination and newly.any():
                lam_out[act_idx[newly]] = act_lam[newly]
                keep = ~newly
                act_idx = act_idx[keep]
                act_lam = act_lam[keep]
                act_r = act_r[keep]
        lam_out[act_idx] = act_lam
        hard = (lam_out < 0).astype(np.int8)
        syndrome_weights = edges.unsatisfied_counts(hard)
        return BatchDecodeResult(
            hard_bits=hard,
            llrs=lam_out,
            iterations=iterations,
            converged=converged & (syndrome_weights == 0),
            syndrome_weights=syndrome_weights,
            unsatisfied_history=histories,
        )

"""Batched duo-binary turbo decoding: vectorised BCJR over ``(batch, ...)``.

This is the turbo twin of :mod:`repro.sim.batch`.  The per-frame BCJR in
:mod:`repro.turbo.bcjr` pays Python interpreter overhead for every trellis
step of every frame; here the alpha/beta forward–backward recursions and the
gamma branch metrics run as dense tensor operations over
``(batch, n_couples, 8, 4)`` arrays, so one pass over the trellis serves the
whole batch:

* :class:`BatchBCJR` — one SISO activation over ``(batch, n_couples, 2)``
  channel LLRs in Max-Log-MAP or Log-MAP flavour, with circular-state
  inheritance (``initial_alpha`` / ``initial_beta`` per frame) and extrinsic
  scaling, exactly mirroring :class:`repro.turbo.bcjr.BCJRDecoder`,
* :class:`BatchTurboDecoder` — the full iterative decoder: two SISO
  activations per iteration exchanging symbol-level (or bit-level, the NoC's
  BTS/STB path) extrinsic information through the CTC interleaver, with
  per-frame early exit on decision stability — a frame whose hard symbols
  repeat across two successive iterations leaves the active set, so a batch
  costs only as many iterations as its slowest member.

Memory layout: the hot arrays are ``gamma`` of shape
``(batch, n_couples, 8, 4)`` and the state-metric lattices ``alpha`` /
``beta`` of shape ``(batch, n_couples + 1, 8)``, all float64 and C-ordered
with the batch axis leading, so every per-step operation touches contiguous
``(batch, 8, 4)`` slabs.  See ``docs/turbo-batching.md``.

The per-frame :class:`~repro.turbo.bcjr.BCJRDecoder` and
:class:`~repro.turbo.decoder.TurboDecoder` delegate here with ``batch=1``;
``tests/test_turbo_batch.py`` pins down that stacking frames changes nothing
(same hard symbols, extrinsics, iteration counts, convergence flags).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend import ArrayBackend, BackendLike, resolve
from repro.errors import DecodingError
from repro.turbo.bits import bit_to_symbol_extrinsic, symbol_to_bit_extrinsic
from repro.turbo.encoder import TurboEncoder
from repro.turbo.trellis import NUM_STATES, NUM_SYMBOLS, DuoBinaryTrellis

_ALGORITHMS = ("max-log", "log-map")


@dataclass
class BatchBCJRResult:
    """Output of one batched SISO activation.

    All arrays carry the batch axis first; shapes are given for a batch of
    ``B`` frames of ``n`` couples each.
    """

    #: ``(B, n, 4)`` a-posteriori symbol log-probability differences.
    aposteriori: np.ndarray
    #: ``(B, n, 4)`` extrinsic output (already scaled by ``extrinsic_scale``).
    extrinsic: np.ndarray
    #: ``(B, n)`` hard symbol decisions per trellis step.
    hard_symbols: np.ndarray
    #: ``(B, 8)`` final forward state metrics (circular-state inheritance).
    final_alpha: np.ndarray
    #: ``(B, 8)`` final backward state metrics.
    final_beta: np.ndarray


class BatchBCJR:
    """Max-Log-MAP / Log-MAP BCJR over ``(batch, n_couples, ...)`` tensors.

    Parameters mirror :class:`repro.turbo.bcjr.BCJRDecoder` (which delegates
    here with ``batch=1``): ``algorithm`` selects plain maximum or the exact
    Jacobian ``max*``; ``extrinsic_scale`` is the ``sigma <= 1`` factor of
    paper Section II-A, forced to 1.0 for Log-MAP.  ``backend`` is an array
    backend override (see :mod:`repro.backend`): the gamma / alpha / beta
    tensors live on the chosen backend for the duration of one activation
    and results return as host NumPy arrays, bit-identical on the NumPy
    backend and tolerance-pinned elsewhere.
    """

    def __init__(
        self,
        trellis: DuoBinaryTrellis | None = None,
        algorithm: str = "max-log",
        extrinsic_scale: float = 0.75,
        backend: BackendLike = None,
    ):
        if algorithm not in _ALGORITHMS:
            raise DecodingError(
                f"algorithm must be 'max-log' or 'log-map', got {algorithm!r}"
            )
        if not 0.0 < extrinsic_scale <= 1.0:
            raise DecodingError(
                f"extrinsic_scale must be in (0, 1], got {extrinsic_scale}"
            )
        self.trellis = trellis if trellis is not None else DuoBinaryTrellis()
        self.algorithm = algorithm
        self.extrinsic_scale = 1.0 if algorithm == "log-map" else float(extrinsic_scale)
        self._next_state = self.trellis.next_state_table()  # (8, 4)
        self._in_state, self._in_symbol = self.trellis.incoming_table()  # (8, 4) each
        parity = self.trellis.parity_table()  # (8, 4, 2)
        symbols = np.arange(NUM_SYMBOLS)
        # Correlation signs (1 - 2*bit) for the systematic and parity bits.
        self._sym_a_sign = 1 - 2 * ((symbols >> 1) & 1)  # (4,)
        self._sym_b_sign = 1 - 2 * (symbols & 1)  # (4,)
        self._y_sign = 1 - 2 * parity[:, :, 0].astype(np.int64)  # (8, 4)
        self._w_sign = 1 - 2 * parity[:, :, 1].astype(np.int64)  # (8, 4)
        # The parity metric takes only four distinct values per trellis step
        # — 0.5*(±Y ± W) — so the build computes those once and gathers them
        # through this (8, 4) combination index (bit 1: Y sign, bit 0: W sign).
        self._parity_combo = (parity[:, :, 0].astype(np.int64) << 1) | parity[
            :, :, 1
        ].astype(np.int64)
        self.backend = backend
        # Trellis tables lifted into each backend's namespace, cached per
        # backend key (for NumPy the "lifted" tables are the arrays above).
        self._lifted: dict[tuple[str, bool], tuple] = {}

    def _tables(self, b: ArrayBackend) -> tuple:
        lifted = self._lifted.get(b.key)
        if lifted is None:
            lifted = (
                b.asarray(self._next_state, dtype=np.int64),
                b.asarray(self._in_state, dtype=np.int64),
                b.asarray(self._in_symbol, dtype=np.int64),
                b.asarray(self._parity_combo, dtype=np.int64),
                b.asarray(self._sym_a_sign, dtype=np.float64),
                b.asarray(self._sym_b_sign, dtype=np.float64),
            )
            self._lifted[b.key] = lifted
        return lifted

    # ------------------------------------------------------------------ #
    # max* helpers
    # ------------------------------------------------------------------ #
    def _maxstar_reduce(self, values, axis: int, xp=np):
        """Reduce with max* along ``axis`` (same arithmetic as the per-frame path)."""
        if self.algorithm == "max-log":
            return xp.amax(values, axis=axis)
        peak = xp.amax(values, axis=axis, keepdims=True)
        return xp.log(xp.sum(xp.exp(values - peak), axis=axis)) + xp.squeeze(peak, axis)

    def _logmap_reduce_states(self, values, xp=np):
        """Log-MAP max* over the state axis of ``(n, batch, 8, 4)`` metrics.

        Only the Log-MAP a-posteriori uses this (Max-Log-MAP takes the fused
        per-state path in :meth:`decode_batch`).  The peak runs as a chain of
        elementwise ``np.maximum`` calls over the eight state slices instead
        of a middle-axis reduction — 3-4x faster on this layout and
        bit-identical, since ``max`` is exact under any association order.
        """
        peak = xp.maximum(values[:, :, 0], values[:, :, 1])
        for state in range(2, NUM_STATES):
            xp.maximum(peak, values[:, :, state], out=peak)
        return xp.log(xp.sum(xp.exp(values - peak[:, :, None, :]), axis=2)) + peak

    # ------------------------------------------------------------------ #
    # Branch metrics
    # ------------------------------------------------------------------ #
    def _branch_metrics(
        self,
        systematic_llrs,
        parity_llrs,
        apriori,
        b: ArrayBackend,
    ):
        """Compute ``gamma`` in *time-major* layout ``(n, batch, 8, 4)``.

        Bit metrics use the symmetric correlation form ``0.5 * (1 - 2*bit) * LLR``
        with the convention ``LLR = log p(0)/p(1)``.  Time-major storage makes
        every per-step slab ``gamma[k]`` contiguous, which is what keeps the
        forward/backward Python loops memory-friendly; the arithmetic (and
        hence the bit pattern of every metric) is unchanged.
        """
        xp = b.xp
        _, _, _, parity_combo, sym_a_sign, sym_b_sign = self._tables(b)
        sys_tm = xp.ascontiguousarray(
            xp.transpose(b.asarray(systematic_llrs), (1, 0, 2))
        )  # (n, batch, 2)
        par_tm = xp.ascontiguousarray(xp.transpose(b.asarray(parity_llrs), (1, 0, 2)))
        apr_tm = xp.ascontiguousarray(
            xp.transpose(b.asarray(apriori), (1, 0, 2))
        )  # (n, batch, 4)
        sys_metric = sym_a_sign * sys_tm[..., 0:1]
        sys_metric += sym_b_sign * sys_tm[..., 1:2]
        sys_metric *= 0.5  # (n, batch, 4)
        # Parity contribution: only four distinct values 0.5*(±Y ± W) exist
        # per step, so compute those and spread them over (8, 4) by gather —
        # one big write instead of three (sign arithmetic is exact, so the
        # bit patterns match the naive 0.5*(y_sign*Y + w_sign*W) form).
        y_llr, w_llr = par_tm[..., 0], par_tm[..., 1]
        combos = xp.empty((*y_llr.shape, 4), dtype=np.float64)  # (n, batch, 4)
        combos[..., 0] = y_llr + w_llr  # Y=0, W=0 -> both signs +
        combos[..., 1] = y_llr - w_llr  # Y=0, W=1
        combos[..., 2] = w_llr - y_llr  # Y=1, W=0
        combos[..., 3] = -combos[..., 0]  # Y=1, W=1
        combos *= 0.5
        gamma = combos[:, :, parity_combo]  # (n, batch, 8, 4)
        gamma += sys_metric[..., None, :]
        gamma += apr_tm[..., None, :]
        return gamma

    def systematic_symbol_metric(self, systematic_llrs: np.ndarray) -> np.ndarray:
        """Per-symbol systematic metric differences ``lambda_k[c_u] - lambda_k[c_0]``.

        Accepts ``(..., n, 2)`` LLR arrays; leading axes are preserved.
        """
        sys_metric = 0.5 * (
            self._sym_a_sign * systematic_llrs[..., 0:1]
            + self._sym_b_sign * systematic_llrs[..., 1:2]
        )
        return sys_metric - sys_metric[..., 0:1]

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def decode_batch(
        self,
        systematic_llrs: np.ndarray,
        parity_llrs: np.ndarray,
        apriori: np.ndarray | None = None,
        initial_alpha: np.ndarray | None = None,
        initial_beta: np.ndarray | None = None,
    ) -> BatchBCJRResult:
        """Run one SISO activation over a ``(batch, n_couples, 2)`` LLR batch.

        Parameters
        ----------
        systematic_llrs:
            ``(batch, n_couples, 2)`` channel LLRs of the systematic bits (A, B).
        parity_llrs:
            ``(batch, n_couples, 2)`` channel LLRs of the parity bits (Y, W);
            use 0 for punctured bits.
        apriori:
            ``(batch, n_couples, 4)`` symbol-level a-priori information
            (``log p(u)/p(0)``); zeros when omitted.
        initial_alpha / initial_beta:
            ``(batch, 8)`` state-metric initialisations for the circular
            trellis (metric inheritance across turbo iterations); uniform
            when omitted.
        """
        b = resolve(self.backend)
        xp = b.xp
        sys_llrs = np.asarray(systematic_llrs, dtype=np.float64)
        par_llrs = np.asarray(parity_llrs, dtype=np.float64)
        if sys_llrs.ndim != 3 or sys_llrs.shape[2] != 2:
            raise DecodingError(
                "systematic_llrs must have shape (batch, n_couples, 2), "
                f"got {sys_llrs.shape}"
            )
        if par_llrs.shape != sys_llrs.shape:
            raise DecodingError("parity_llrs must have the same shape as systematic_llrs")
        batch, n = sys_llrs.shape[:2]
        if apriori is None:
            apriori_arr = np.zeros((batch, n, NUM_SYMBOLS), dtype=np.float64)
        else:
            apriori_arr = np.asarray(apriori, dtype=np.float64)
            if apriori_arr.shape != (batch, n, NUM_SYMBOLS):
                raise DecodingError(
                    f"apriori must have shape ({batch}, {n}, {NUM_SYMBOLS}), "
                    f"got {apriori_arr.shape}"
                )
        gamma = self._branch_metrics(sys_llrs, par_llrs, apriori_arr, b)  # (n, batch, 8, 4)

        # State-metric lattices in time-major layout: every per-step slab
        # alpha[k] / beta[k] is a contiguous (batch, 8) array.
        alpha = xp.empty((n + 1, batch, NUM_STATES), dtype=np.float64)
        beta = xp.empty((n + 1, batch, NUM_STATES), dtype=np.float64)
        alpha[0] = self._normalize_init(initial_alpha, batch, b)
        beta[n] = self._normalize_init(initial_beta, batch, b)

        next_state, in_state, in_symbol, _, _, _ = self._tables(b)
        # Forward recursion (eq. (3)): spread alpha over the outgoing edges,
        # then gather each state's four incoming edges and reduce.
        for k in range(n):
            outgoing = alpha[k][:, :, None] + gamma[k]  # (batch, 8, 4)
            cand = outgoing[:, in_state, in_symbol]
            new_alpha = self._maxstar_reduce(cand, axis=2, xp=xp)
            new_alpha -= xp.amax(new_alpha, axis=1, keepdims=True)
            alpha[k + 1] = new_alpha
        # Backward recursion (eq. (4)).  The gather owns its memory, so the
        # branch metrics accumulate in place (one fewer temporary per step).
        for k in range(n - 1, -1, -1):
            incoming = beta[k + 1][:, next_state]  # (batch, 8, 4)
            incoming += gamma[k]
            new_beta = self._maxstar_reduce(incoming, axis=2, xp=xp)
            new_beta -= xp.amax(new_beta, axis=1, keepdims=True)
            beta[k] = new_beta

        final_alpha = np.array(b.to_numpy(alpha[n]))
        final_beta = np.array(b.to_numpy(beta[0]))

        # A-posteriori per symbol (eq. (1) before subtracting the systematic
        # part): b_metric[k] = alpha[k] + gamma[k] + beta[k+1][next_state],
        # reduced with max* over the originating state.
        if self.algorithm == "max-log":
            # Fused accumulate-and-maximise per state slice: never
            # materialises the (n, batch, 8, 4) b_metric (max is exact under
            # any association order, so the bit patterns are unchanged).
            apo_tm = None
            for state in range(NUM_STATES):
                term = gamma[:, :, state, :] + alpha[:-1][:, :, state, None]
                term += beta[1:][:, :, next_state[state]]
                if apo_tm is None:
                    apo_tm = term
                else:
                    xp.maximum(apo_tm, term, out=apo_tm)
        else:
            # Log-MAP needs every branch metric for the Jacobian sum, so the
            # b_metric is materialised by consuming gamma in place.
            gamma += alpha[:-1][:, :, :, None]
            gamma += beta[1:][:, :, next_state]
            apo_tm = self._logmap_reduce_states(gamma, xp=xp)
        apo_raw = b.to_numpy(
            xp.ascontiguousarray(xp.transpose(apo_tm, (1, 0, 2)))
        )  # (batch, n, 4)
        apo = apo_raw - apo_raw[..., 0:1]

        sys_diff = self.systematic_symbol_metric(sys_llrs)
        apr_diff = apriori_arr - apriori_arr[..., 0:1]
        extrinsic = self.extrinsic_scale * (apo - sys_diff - apr_diff)

        hard_symbols = np.argmax(apo, axis=2).astype(np.int64)
        return BatchBCJRResult(
            aposteriori=apo,
            extrinsic=extrinsic,
            hard_symbols=hard_symbols,
            final_alpha=final_alpha,
            final_beta=final_beta,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _normalize_init(init, batch: int, b: ArrayBackend):
        xp = b.xp
        if init is None:
            return xp.zeros((batch, NUM_STATES), dtype=np.float64)
        arr = b.asarray(init, dtype=np.float64)
        if arr.shape != (batch, NUM_STATES):
            raise DecodingError(
                f"state-metric init must have shape ({batch}, {NUM_STATES}), "
                f"got {tuple(arr.shape)}"
            )
        return arr - xp.amax(arr, axis=1, keepdims=True)


@dataclass
class BatchTurboResult:
    """Outcome of one batched turbo decode.

    Attributes
    ----------
    hard_bits:
        ``(batch, 2 * n_couples)`` int8 information-bit decisions (the turbo
        code is systematic, so these are the decoded payload bits — unlike
        the LDPC :class:`~repro.sim.batch.BatchDecodeResult`, which decides
        whole codewords).
    hard_symbols:
        ``(batch, n_couples)`` couple-symbol decisions ``u = 2A + B``.
    aposteriori:
        ``(batch, n_couples, 4)`` final symbol a-posteriori vectors in
        natural order (from the last iteration each frame actually ran).
    iterations:
        ``(batch,)`` full turbo iterations each frame ran (a frame that
        early-exits at iteration ``i`` reports ``i``).
    converged:
        ``(batch,)`` per-frame decision-stability flags (hard symbols
        identical in two successive iterations — latched, like the
        per-frame decoder).
    decision_changes:
        One list per frame of the symbol-decision changes after every
        iteration from the second onward (the early-exit statistic).
    """

    hard_bits: np.ndarray
    hard_symbols: np.ndarray
    aposteriori: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    decision_changes: list[list[int]] = field(default_factory=list)

    @property
    def batch_size(self) -> int:
        """Number of frames in this result."""
        return int(self.hard_bits.shape[0])

    def frame(self, index: int) -> tuple[np.ndarray, int, bool]:
        """Extract frame ``index`` as ``(hard_bits, iterations, converged)``.

        Mirrors :meth:`repro.sim.batch.BatchDecodeResult.frame` so the decode
        service can resolve per-request futures uniformly across families;
        the bits are the decoded *information* bits (this decoder sets
        ``decides_info_bits``), returned as a fresh copy.
        """
        return (
            self.hard_bits[index].copy(),
            int(self.iterations[index]),
            bool(self.converged[index]),
        )


class BatchTurboDecoder:
    """Iterative duo-binary turbo decoder over ``(batch, ...)`` LLR arrays.

    Satisfies the :class:`repro.sim.batch.BatchDecoder` protocol
    (``n_bits`` / ``decode_batch``), so :class:`repro.sim.runner.BerRunner`
    drives it exactly like the batched LDPC decoders: ``decode_batch`` takes
    the flat ``(batch, n)`` channel LLRs of the transmitted sub-blocks
    (systematic, parity1, parity2 — the :meth:`TurboCodeword.to_bit_array`
    layout) and returns information-bit decisions.

    Parameters mirror :class:`repro.turbo.decoder.TurboDecoder`, which
    delegates here with ``batch=1``.

    Parameters
    ----------
    encoder:
        The encoder whose frames are being decoded (provides block size,
        interleaver and rate).
    max_iterations:
        Number of full iterations (two SISO activations each); the paper uses 8.
    algorithm:
        ``"max-log"`` (paper's choice) or ``"log-map"``.
    extrinsic_scale:
        Scaling factor ``sigma`` applied to the extrinsic information.
    bit_level_exchange:
        When true, extrinsic information is collapsed to bit level and rebuilt
        at the receiving SISO, mimicking the BTS/STB path used on the NoC
        (paper Section IV-B, ~0.2 dB loss).
    early_termination:
        Remove a frame from the active set as soon as its hard symbol
        decisions are identical in two successive iterations.
    backend:
        Array-backend override forwarded to the SISO kernel (the iteration
        control loop — interleaving, early exit, compaction — stays on host
        NumPy).
    """

    def __init__(
        self,
        encoder: TurboEncoder,
        max_iterations: int = 8,
        algorithm: str = "max-log",
        extrinsic_scale: float = 0.75,
        bit_level_exchange: bool = False,
        early_termination: bool = True,
        backend: BackendLike = None,
    ):
        if max_iterations <= 0:
            raise DecodingError(f"max_iterations must be positive, got {max_iterations}")
        self.encoder = encoder
        self.max_iterations = int(max_iterations)
        self.bit_level_exchange = bool(bit_level_exchange)
        self.early_termination = bool(early_termination)
        self._siso = BatchBCJR(
            encoder.trellis,
            algorithm=algorithm,
            extrinsic_scale=extrinsic_scale,
            backend=backend,
        )
        self._n_couples = encoder.n_couples
        self._perm = encoder.interleaver.permutation()
        flags = encoder.interleaver.swap_flags().astype(bool)
        self._flags = flags
        self._flags_perm = flags[self._perm]

    @property
    def algorithm(self) -> str:
        """``"max-log"`` or ``"log-map"``."""
        return self._siso.algorithm

    @property
    def extrinsic_scale(self) -> float:
        """Scaling factor applied to the extrinsic information."""
        return self._siso.extrinsic_scale

    #: The turbo decoder decides the (systematic) information bits, not the
    #: whole codeword — :class:`repro.sim.runner.BerRunner` reads this flag
    #: to pick the error-count reference (LDPC decoders leave it unset/False).
    decides_info_bits = True

    @property
    def n_bits(self) -> int:
        """Flat channel-LLR length each frame must have (``encoder.n``)."""
        return self.encoder.n

    # ------------------------------------------------------------------ #
    # Interleaving of batched symbol-level quantities
    # ------------------------------------------------------------------ #
    def _interleave_vectors(self, values: np.ndarray) -> np.ndarray:
        """Reorder ``(batch, n, 4)`` vectors from natural to interleaved order.

        The intra-couple swap of step 1 exchanges the roles of bits A and B,
        which at symbol level exchanges elements 1 (A=0,B=1) and 2 (A=1,B=0).
        """
        reordered = values[:, self._perm]
        swapped = self._flags_perm
        reordered[:, swapped] = reordered[:, swapped][:, :, [0, 2, 1, 3]]
        return reordered

    def _deinterleave_vectors(self, values: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`_interleave_vectors`."""
        natural = np.empty_like(values)
        natural[:, self._perm] = values
        natural[:, self._flags] = natural[:, self._flags][:, :, [0, 2, 1, 3]]
        return natural

    def _interleave_pairs(self, values: np.ndarray) -> np.ndarray:
        """Reorder ``(batch, n, 2)`` (A, B) pairs from natural to interleaved order."""
        reordered = values[:, self._perm]
        swapped = self._flags_perm
        reordered[:, swapped] = reordered[:, swapped][:, :, ::-1]
        return reordered

    def _maybe_bit_level(self, extrinsic: np.ndarray) -> np.ndarray:
        """Apply the STB -> network -> BTS round trip when bit-level exchange is on."""
        if not self.bit_level_exchange:
            return extrinsic
        return bit_to_symbol_extrinsic(symbol_to_bit_extrinsic(extrinsic))

    # ------------------------------------------------------------------ #
    # LLR plumbing
    # ------------------------------------------------------------------ #
    def split_llrs_batch(
        self, llrs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split flat ``(batch, n)`` LLR arrays into the three sub-blocks.

        Returns ``(systematic, parity1, parity2)`` shaped
        ``(batch, n_couples, 2)``; punctured W positions receive LLR 0.
        """
        arr = np.asarray(llrs, dtype=np.float64)
        n = self._n_couples
        expected_len = 4 * n if self.encoder.rate == "1/2" else 6 * n
        if arr.ndim != 2 or arr.shape[1] != expected_len:
            raise DecodingError(
                f"expected (batch, {expected_len}) LLRs for rate "
                f"{self.encoder.rate}, got shape {arr.shape}"
            )
        batch = arr.shape[0]
        systematic = arr[:, : 2 * n].reshape(batch, n, 2)
        parity1 = np.zeros((batch, n, 2), dtype=np.float64)
        parity2 = np.zeros((batch, n, 2), dtype=np.float64)
        if self.encoder.rate == "1/2":
            parity1[:, :, 0] = arr[:, 2 * n : 3 * n]
            parity2[:, :, 0] = arr[:, 3 * n : 4 * n]
        else:
            parity1[:] = arr[:, 2 * n : 4 * n].reshape(batch, n, 2)
            parity2[:] = arr[:, 4 * n : 6 * n].reshape(batch, n, 2)
        return systematic, parity1, parity2

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def decode_batch(self, channel_llrs: np.ndarray) -> BatchTurboResult:
        """Decode flat ``(batch, n)`` channel LLRs (the BerRunner entry point)."""
        return self.decode_split(*self.split_llrs_batch(channel_llrs))

    def decode_split(
        self,
        systematic_llrs: np.ndarray,
        parity1_llrs: np.ndarray,
        parity2_llrs: np.ndarray,
    ) -> BatchTurboResult:
        """Decode a batch given per-sub-block LLR arrays.

        Parameters
        ----------
        systematic_llrs:
            ``(batch, n_couples, 2)`` LLRs of (A, B) in natural order.
        parity1_llrs:
            ``(batch, n_couples, 2)`` LLRs of (Y1, W1) in natural order
            (0 for punctured W).
        parity2_llrs:
            ``(batch, n_couples, 2)`` LLRs of (Y2, W2) in interleaved order.
        """
        sys_llrs = np.asarray(systematic_llrs, dtype=np.float64)
        par1 = np.asarray(parity1_llrs, dtype=np.float64)
        par2 = np.asarray(parity2_llrs, dtype=np.float64)
        if sys_llrs.ndim != 3 or sys_llrs.shape[1:] != (self._n_couples, 2):
            raise DecodingError(
                f"systematic LLRs must have shape (batch, {self._n_couples}, 2), "
                f"got {sys_llrs.shape}"
            )
        for name, arr in (("parity1", par1), ("parity2", par2)):
            if arr.shape != sys_llrs.shape:
                raise DecodingError(
                    f"{name} LLRs must have shape {sys_llrs.shape}, got {arr.shape}"
                )
        batch = sys_llrs.shape[0]
        n = self._n_couples

        iterations = np.zeros(batch, dtype=np.int64)
        converged = np.zeros(batch, dtype=bool)
        hard_symbols_out = np.zeros((batch, n), dtype=np.int64)
        apo_out = np.zeros((batch, n, NUM_SYMBOLS), dtype=np.float64)
        changes_hist: list[list[int]] = [[] for _ in range(batch)]

        # Active working set: frames still decoding, compacted on early exit.
        # The LLR arrays are only ever read (the SISO makes its own contiguous
        # transposes), so the full-batch views need no defensive copies —
        # compaction by fancy indexing produces fresh arrays anyway.
        act_idx = np.arange(batch)
        act_sys = sys_llrs
        act_sys_int = self._interleave_pairs(sys_llrs)
        act_par1 = par1
        act_par2 = par2
        ext_2_to_1 = np.zeros((batch, n, NUM_SYMBOLS), dtype=np.float64)
        alpha1 = beta1 = alpha2 = beta2 = None
        previous: np.ndarray | None = None

        for iteration in range(self.max_iterations):
            if act_idx.size == 0:
                break
            result1 = self._siso.decode_batch(
                act_sys,
                act_par1,
                apriori=ext_2_to_1,
                initial_alpha=alpha1,
                initial_beta=beta1,
            )
            alpha1, beta1 = result1.final_alpha, result1.final_beta
            ext_1_to_2 = self._interleave_vectors(
                self._maybe_bit_level(result1.extrinsic)
            )
            result2 = self._siso.decode_batch(
                act_sys_int,
                act_par2,
                apriori=ext_1_to_2,
                initial_alpha=alpha2,
                initial_beta=beta2,
            )
            alpha2, beta2 = result2.final_alpha, result2.final_beta
            ext_2_to_1 = self._deinterleave_vectors(
                self._maybe_bit_level(result2.extrinsic)
            )

            apo_natural = self._deinterleave_vectors(result2.aposteriori)
            hard = np.argmax(apo_natural, axis=2).astype(np.int64)
            iterations[act_idx] = iteration + 1
            hard_symbols_out[act_idx] = hard
            apo_out[act_idx] = apo_natural

            if previous is None:
                previous = hard
                continue
            changes = np.count_nonzero(hard != previous, axis=1)
            for local, frame in enumerate(act_idx):
                changes_hist[frame].append(int(changes[local]))
            stable = changes == 0
            converged[act_idx[stable]] = True
            if self.early_termination and stable.any():
                keep = ~stable
                act_idx = act_idx[keep]
                act_sys = act_sys[keep]
                act_sys_int = act_sys_int[keep]
                act_par1 = act_par1[keep]
                act_par2 = act_par2[keep]
                ext_2_to_1 = ext_2_to_1[keep]
                alpha1, beta1 = alpha1[keep], beta1[keep]
                alpha2, beta2 = alpha2[keep], beta2[keep]
                previous = hard[keep]
            else:
                previous = hard

        hard_bits = np.empty((batch, n, 2), dtype=np.int8)
        hard_bits[:, :, 0] = (hard_symbols_out >> 1) & 1
        hard_bits[:, :, 1] = hard_symbols_out & 1
        return BatchTurboResult(
            hard_bits=hard_bits.reshape(batch, 2 * n),
            hard_symbols=hard_symbols_out,
            aposteriori=apo_out,
            iterations=iterations,
            converged=converged,
            decision_changes=changes_hist,
        )

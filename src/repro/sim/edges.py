"""Flat edge-index arrays for vectorised Tanner-graph message passing.

The per-frame decoders walk H row by row (one Python loop iteration per
check per frame).  The batch engine instead treats the Tanner graph as a
flat list of ``n_edges`` edges, stored row-major: edge ``e`` belongs to
check ``r`` when ``row_ptr[r] <= e < row_ptr[r + 1]`` and touches variable
``edge_cols[e]``.  A ``(batch, n)`` LLR array is gathered into a
``(batch, n_edges)`` edge array with one fancy-index, check updates run on
dense ``(batch, n_checks_d, d)`` tensors (one group per distinct check
degree ``d`` — WiMAX codes have at most two), and results are scattered
back the same way.  :class:`EdgeIndex` precomputes every index array those
gathers and scatters need.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple

import numpy as np

if TYPE_CHECKING:  # imported lazily to keep repro.sim import-safe from repro.ldpc
    from repro.ldpc.hmatrix import ParityCheckMatrix


class DegreeGroup(NamedTuple):
    """All checks (or variables) of one degree, as dense index tensors.

    Attributes
    ----------
    degree:
        Number of edges incident to every member of the group.
    members:
        ``(n_members,)`` row indices (check groups) or column indices
        (variable groups) belonging to this group.
    edges:
        ``(n_members, degree)`` flat edge positions of each member's edges,
        usable to gather a ``(batch, n_edges)`` array into
        ``(batch, n_members, degree)``.
    """

    degree: int
    members: np.ndarray
    edges: np.ndarray


class EdgeIndex:
    """Precomputed flat edge indexing for one parity-check matrix.

    Built once per decoder from a
    :class:`~repro.ldpc.hmatrix.ParityCheckMatrix`; all arrays are read-only
    inputs to the batched kernels in :mod:`repro.sim.kernels`.
    """

    def __init__(self, h: "ParityCheckMatrix"):
        rows = [h.row(r) for r in range(h.n_rows)]
        self.n_rows = int(h.n_rows)
        self.n_cols = int(h.n_cols)
        #: ``(n_edges,)`` variable index of every edge, row-major.
        self.edge_cols: np.ndarray = np.concatenate(rows)
        self.n_edges = int(self.edge_cols.size)
        degrees = np.array([row.size for row in rows], dtype=np.int64)
        #: ``(n_rows + 1,)`` row segment boundaries into the flat edge axis.
        self.row_ptr: np.ndarray = np.concatenate(
            [[0], np.cumsum(degrees)]
        ).astype(np.int64)
        #: Per-row column indices (shared with the matrix, row-major order).
        self.row_cols: list[np.ndarray] = rows
        self.check_groups: tuple[DegreeGroup, ...] = self._build_check_groups(degrees)
        self.variable_groups: tuple[DegreeGroup, ...] = self._build_variable_groups()

    def _build_check_groups(self, degrees: np.ndarray) -> tuple[DegreeGroup, ...]:
        groups = []
        for degree in np.unique(degrees):
            members = np.flatnonzero(degrees == degree)
            starts = self.row_ptr[members]
            edges = starts[:, None] + np.arange(int(degree))[None, :]
            groups.append(DegreeGroup(int(degree), members, edges))
        return tuple(groups)

    def _build_variable_groups(self) -> tuple[DegreeGroup, ...]:
        counts = np.bincount(self.edge_cols, minlength=self.n_cols)
        # Stable sort keeps each column's edges in ascending row order, the
        # same order in which the sequential decoders accumulate them.
        order = np.argsort(self.edge_cols, kind="stable")
        col_ends = np.cumsum(counts)
        groups = []
        for degree in np.unique(counts):
            if degree == 0:
                continue
            members = np.flatnonzero(counts == degree)
            starts = col_ends[members] - degree
            idx = starts[:, None] + np.arange(int(degree))[None, :]
            groups.append(DegreeGroup(int(degree), members, order[idx]))
        return tuple(groups)

    # ------------------------------------------------------------------ #
    # Gather / scatter primitives
    # ------------------------------------------------------------------ #
    def gather(self, values: np.ndarray) -> np.ndarray:
        """Gather per-variable values ``(batch, n)`` onto edges ``(batch, n_edges)``."""
        return values[:, self.edge_cols]

    def accumulate_columns(self, edge_values: np.ndarray) -> np.ndarray:
        """Sum per-edge values ``(batch, n_edges)`` into columns ``(batch, n)``.

        This is the a-posteriori accumulation of the flooding schedule: each
        variable receives the sum of the check-to-variable messages on its
        incident edges.  Columns without edges receive zero.
        """
        out = np.zeros((edge_values.shape[0], self.n_cols), dtype=edge_values.dtype)
        for group in self.variable_groups:
            out[:, group.members] = edge_values[:, group.edges].sum(axis=-1)
        return out

    def unsatisfied_counts(self, hard_bits: np.ndarray) -> np.ndarray:
        """Number of unsatisfied parity checks per frame.

        Parameters
        ----------
        hard_bits:
            ``(batch, n)`` 0/1 (or boolean) hard decisions.

        Returns
        -------
        numpy.ndarray
            ``(batch,)`` counts of rows whose parity sum is odd — the batched
            equivalent of ``h.syndrome(word).sum()``.
        """
        edge_bits = hard_bits.astype(np.int64)[:, self.edge_cols]
        counts = np.zeros(hard_bits.shape[0], dtype=np.int64)
        for group in self.check_groups:
            parity = edge_bits[:, group.edges].sum(axis=-1) & 1
            counts += parity.sum(axis=-1)
        return counts

"""Interval estimates for Monte-Carlo error-rate measurements.

A BER point estimated from ``k`` errors in ``n`` trials is a binomial
proportion; for the small ``k`` typical of waterfall-region simulation the
naive normal (Wald) interval is badly miscalibrated, so the runner reports
Wilson score intervals instead (well-behaved down to ``k = 0``).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

#: Two-sided normal quantiles for the confidence levels the runner exposes.
_Z_SCORES = {
    0.90: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.99: 2.5758293035489004,
}


def wilson_interval(
    errors: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Parameters
    ----------
    errors:
        Number of observed errors (successes of the rare event), ``>= 0``.
    trials:
        Number of Bernoulli trials, ``>= errors``.  With zero trials the
        interval is the uninformative ``(0, 1)``.
    confidence:
        Two-sided confidence level; one of 0.90, 0.95 or 0.99.

    Returns
    -------
    tuple[float, float]
        ``(lower, upper)`` bounds on the true error probability.
    """
    if errors < 0 or trials < 0 or errors > trials:
        raise ConfigurationError(
            f"need 0 <= errors <= trials, got errors={errors}, trials={trials}"
        )
    if confidence not in _Z_SCORES:
        raise ConfigurationError(
            f"confidence must be one of {sorted(_Z_SCORES)}, got {confidence}"
        )
    if trials == 0:
        return (0.0, 1.0)
    z = _Z_SCORES[confidence]
    p_hat = errors / trials
    z2_over_n = z * z / trials
    denominator = 1.0 + z2_over_n
    centre = p_hat + z2_over_n / 2.0
    half_width = z * math.sqrt(
        (p_hat * (1.0 - p_hat) + z2_over_n / 4.0) / trials
    )
    lower = max(0.0, (centre - half_width) / denominator)
    upper = min(1.0, (centre + half_width) / denominator)
    # Rounding can leave the degenerate endpoints a few ulp off their exact
    # values (e.g. lower ~ 1e-19 for zero errors); pin them.
    if errors == 0:
        lower = 0.0
    if errors == trials:
        upper = 1.0
    return (lower, upper)

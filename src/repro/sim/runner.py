"""Streaming Monte-Carlo BER runner built on the batched decoders.

``BerRunner`` drives the full functional chain — random information bits →
systematic encoding → modulation → channel (AWGN or Rayleigh fading) → LLR
demapping (CSI-weighted under fading, optionally fixed-point quantised) →
batched decoding — in configurable batch sizes, accumulating bit/frame error
counts per Eb/N0 point until either an error target or a frame budget is
hit.  Every batch draws from its own RNG spawned off one
:class:`numpy.random.SeedSequence`, so a sweep is reproducible bit-for-bit
for a fixed ``(seed, batch_size)`` and statistically independent across
batches and points.

The runner is code-family agnostic: any code exposing ``k`` / ``n`` /
``rate`` / ``encode_batch`` paired with any
:class:`~repro.sim.batch.BatchDecoder` works, so both halves of the paper's
multi-standard decoder — WiMAX LDPC through
:class:`~repro.sim.batch.BatchLayeredDecoder` /
:class:`~repro.sim.batch.BatchFloodingDecoder` and the WiMAX CTC through
:class:`~repro.sim.turbo_batch.BatchTurboDecoder` — stream through the same
loop.  Decoders may decide either whole codewords (the LDPC decoders) or
just the information bits (the turbo decoder); the runner counts errors over
whichever the decoder returns.

It is channel-model agnostic the same way: ``channel=`` selects AWGN
(default), per-symbol i.i.d. Rayleigh (``"rayleigh"``) or block Rayleigh
(``"rayleigh-block"``) by name, or any callable ``(noise_sigma, rng) ->
channel`` exposing ``transmit`` and ``llr_noise_variance``.  A channel whose
``transmit`` returns ``(received, gains)`` (the fading channels) gets its
CSI threaded into ``Modulator.demodulate_llr(..., gains=...)`` — zero new
simulation loops per scenario.

Point estimates come with Wilson confidence intervals
(:func:`repro.sim.stats.wilson_interval`); conditional-moment estimation
practice (Song-Jiang-Zhu, arXiv:2404.11092) motivates never reporting a
Monte-Carlo BER without its interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.channel.awgn import AWGNChannel, ebn0_to_noise_sigma
from repro.channel.fading import RayleighFadingChannel
from repro.channel.modulation import BPSKModulator, Modulator
from repro.channel.quantize import LLRQuantizer
from repro.errors import ConfigurationError, DecodingError
from repro.sim.batch import BatchDecoder
from repro.sim.stats import wilson_interval

#: Channel factories selectable by name through ``BerRunner(channel=...)``.
CHANNEL_FACTORIES: dict[str, Callable[[float, np.random.Generator], object]] = {
    "awgn": AWGNChannel,
    "rayleigh": RayleighFadingChannel,
    "rayleigh-block": lambda sigma, rng: RayleighFadingChannel(
        sigma, rng, block_fading=True
    ),
}


class _EncodableCode(Protocol):
    """What the runner needs from a code object.

    :class:`~repro.ldpc.wimax.WimaxLdpcCode` and
    :class:`~repro.turbo.encoder.TurboEncoder` both satisfy it; ``rate`` may
    be a float or an ``"a/b"`` fraction string.
    """

    @property
    def k(self) -> int: ...

    @property
    def n(self) -> int: ...

    @property
    def rate(self) -> float | str: ...

    def encode_batch(self, info_bits: np.ndarray) -> np.ndarray: ...


def resolve_code_rate(rate: float | str) -> float:
    """Normalise a code rate given as a float or an ``"a/b"`` string.

    The result is validated to lie in ``(0, 1]`` — an out-of-range rate
    (``"5/4"``, a negative fraction) is a configuration mistake that would
    otherwise only surface later inside
    :func:`~repro.channel.awgn.ebn0_to_noise_sigma`.
    """
    if isinstance(rate, str):
        numerator, sep, denominator = rate.partition("/")
        try:
            if not sep:
                value = float(numerator)
            else:
                value = float(numerator) / float(denominator)
        except (ValueError, ZeroDivisionError) as exc:
            raise ConfigurationError(f"cannot parse code rate {rate!r}") from exc
    else:
        value = float(rate)
    if not 0.0 < value <= 1.0:
        raise ConfigurationError(
            f"code rate must be in (0, 1], got {rate!r} (= {value})"
        )
    return value


@dataclass(frozen=True)
class BerPoint:
    """Error-rate estimate at one Eb/N0 operating point.

    ``ber_interval`` / ``fer_interval`` are Wilson confidence bounds at the
    runner's confidence level; ``avg_iterations`` is the mean number of
    decoder iterations actually run (early exits included), the quantity the
    paper's convergence-speed claim is about.  ``total_bits`` counts the bits
    actually compared: codeword bits for decoders that decide codewords
    (LDPC), information bits for decoders that decide the payload (turbo).
    """

    ebn0_db: float
    frames: int
    total_bits: int
    bit_errors: int
    frame_errors: int
    avg_iterations: float
    ber_interval: tuple[float, float]
    fer_interval: tuple[float, float]

    @property
    def ber(self) -> float:
        """Bit error rate point estimate."""
        return self.bit_errors / self.total_bits if self.total_bits else 0.0

    @property
    def fer(self) -> float:
        """Frame error rate point estimate."""
        return self.frame_errors / self.frames if self.frames else 0.0

    def __str__(self) -> str:
        lo, hi = self.ber_interval
        return (
            f"Eb/N0={self.ebn0_db:.2f} dB: BER={self.ber:.3e} "
            f"[{lo:.1e}, {hi:.1e}] FER={self.fer:.3e} "
            f"({self.frames} frames, {self.bit_errors} bit errors, "
            f"avg {self.avg_iterations:.1f} it)"
        )


class BerRunner:
    """Monte-Carlo BER/FER sweeps over a batched decoder.

    Parameters
    ----------
    code:
        Code under test; needs ``k``/``n``/``rate`` and ``encode_batch``
        (every :class:`~repro.ldpc.wimax.WimaxLdpcCode` and every
        :class:`~repro.turbo.encoder.TurboEncoder` qualifies).
    decoder:
        Any :class:`~repro.sim.batch.BatchDecoder` built for the same code —
        batched LDPC decoders and
        :class:`~repro.sim.turbo_batch.BatchTurboDecoder` alike.
    modulator:
        Bit-to-symbol mapper (batched); BPSK when omitted.
    channel:
        Channel model per run: a name from :data:`CHANNEL_FACTORIES`
        (``"awgn"``, ``"rayleigh"``, ``"rayleigh-block"``) or a callable
        ``(noise_sigma, rng) -> channel``.  Fading channels return CSI from
        ``transmit`` and the runner threads it into the demapper.
    llr_quantizer:
        Optional :class:`~repro.channel.quantize.LLRQuantizer`: round-trip
        every channel LLR through it before decoding (the paper's
        fixed-point channel front-end).  Equivalent to wrapping the decoder
        in :class:`~repro.sim.batch.QuantizedBatchDecoder`.
    batch_size:
        Frames decoded per batch.  See ``docs/batching.md`` for guidance;
        64 is a good default for WiMAX-sized codes.
    max_frames:
        Hard frame budget per Eb/N0 point.
    target_frame_errors:
        Stop a point early once this many frame errors are in (``None``
        disables the early stop and always runs ``max_frames``).
    seed:
        Root seed of the per-batch RNG tree.
    confidence:
        Confidence level of the Wilson intervals (0.90, 0.95 or 0.99).
    """

    def __init__(
        self,
        code: _EncodableCode,
        decoder: BatchDecoder,
        modulator: Modulator | None = None,
        *,
        channel: str | Callable[[float, np.random.Generator], object] = "awgn",
        llr_quantizer: LLRQuantizer | None = None,
        batch_size: int = 64,
        max_frames: int = 10_000,
        target_frame_errors: int | None = 50,
        seed: int = 0,
        confidence: float = 0.95,
    ):
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        if max_frames <= 0:
            raise ConfigurationError(f"max_frames must be positive, got {max_frames}")
        if target_frame_errors is not None and target_frame_errors <= 0:
            raise ConfigurationError(
                f"target_frame_errors must be positive or None, got {target_frame_errors}"
            )
        if decoder.n_bits != code.n:
            raise ConfigurationError(
                f"decoder expects n={decoder.n_bits} but the code has n={code.n}"
            )
        if isinstance(channel, str):
            try:
                self._channel_factory = CHANNEL_FACTORIES[channel]
            except KeyError:
                raise ConfigurationError(
                    f"unknown channel {channel!r}; known channels: "
                    f"{sorted(CHANNEL_FACTORIES)} (or pass a factory callable)"
                ) from None
        elif callable(channel):
            self._channel_factory = channel
        else:
            raise ConfigurationError(
                f"channel must be a name or a (noise_sigma, rng) -> channel "
                f"factory, got {channel!r}"
            )
        if llr_quantizer is not None and not isinstance(llr_quantizer, LLRQuantizer):
            raise ConfigurationError("llr_quantizer must be an LLRQuantizer or None")
        self.code = code
        self.decoder = decoder
        self.modulator = modulator if modulator is not None else BPSKModulator()
        self.channel = channel
        self.llr_quantizer = llr_quantizer
        self.batch_size = int(batch_size)
        self.max_frames = int(max_frames)
        self.target_frame_errors = target_frame_errors
        self.seed = int(seed)
        self.confidence = float(confidence)

    def _point_seed_sequence(self, ebn0_db: float) -> np.random.SeedSequence:
        # Key the per-point stream on the operating point (in milli-dB) so
        # points are independent and insensitive to sweep order.
        point_key = int(round(ebn0_db * 1000.0)) & 0xFFFFFFFF
        return np.random.SeedSequence(entropy=(self.seed, point_key))

    def run_point(self, ebn0_db: float) -> BerPoint:
        """Simulate one Eb/N0 point until the error target or frame budget."""
        sigma = ebn0_to_noise_sigma(
            ebn0_db, resolve_code_rate(self.code.rate), self.modulator.bits_per_symbol
        )
        seq = self._point_seed_sequence(ebn0_db)
        frames = 0
        total_bits = 0
        bit_errors = 0
        frame_errors = 0
        iteration_sum = 0
        while frames < self.max_frames:
            if (
                self.target_frame_errors is not None
                and frame_errors >= self.target_frame_errors
            ):
                break
            batch = min(self.batch_size, self.max_frames - frames)
            rng = np.random.default_rng(seq.spawn(1)[0])
            info = rng.integers(0, 2, size=(batch, self.code.k))
            codewords = self.code.encode_batch(info)
            symbols = self.modulator.modulate(codewords)
            channel = self._channel_factory(sigma, rng)
            transmission = channel.transmit(symbols)
            if isinstance(transmission, tuple):
                received, gains = transmission
            else:
                received, gains = transmission, None
            llrs = self.modulator.demodulate_llr(
                received,
                channel.llr_noise_variance(np.iscomplexobj(symbols)),
                gains=gains,
            )
            if self.llr_quantizer is not None:
                llrs = self.llr_quantizer.quantize_to_real(llrs)
            result = self.decoder.decode_batch(llrs)
            decisions = np.asarray(result.hard_bits)
            # LDPC decoders decide whole codewords; a decoder that sets
            # ``decides_info_bits`` (the turbo decoder) decides only the
            # systematic information bits.
            reference = (
                info if getattr(self.decoder, "decides_info_bits", False) else codewords
            )
            if decisions.shape != reference.shape:
                raise DecodingError(
                    f"decoder returned decisions of shape {decisions.shape}; "
                    f"expected {reference.shape}"
                )
            errors_per_frame = np.count_nonzero(decisions != reference, axis=1)
            frames += batch
            total_bits += batch * reference.shape[1]
            bit_errors += int(errors_per_frame.sum())
            frame_errors += int(np.count_nonzero(errors_per_frame))
            iteration_sum += int(result.iterations.sum())
        return BerPoint(
            ebn0_db=float(ebn0_db),
            frames=frames,
            total_bits=total_bits,
            bit_errors=bit_errors,
            frame_errors=frame_errors,
            avg_iterations=iteration_sum / frames if frames else 0.0,
            ber_interval=wilson_interval(bit_errors, total_bits, self.confidence),
            fer_interval=wilson_interval(frame_errors, frames, self.confidence),
        )

    def run(self, ebn0_points: Sequence[float]) -> list[BerPoint]:
        """Sweep a list of Eb/N0 points, one :class:`BerPoint` each."""
        return [self.run_point(float(point)) for point in ebn0_points]

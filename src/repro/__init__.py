"""repro — reproduction of "A Network-on-Chip-based turbo/LDPC decoder architecture".

This package re-implements, in Python, the system presented by Condo, Martina
and Masera at DATE 2012: a flexible multi-standard forward-error-correction
decoder in which parallel processing elements (each able to act as a turbo
SISO or as a layered LDPC check processor) are interconnected by an intra-IP
Network-on-Chip, together with the design flow used to choose the NoC
topology, parallelism, routing algorithm and node architecture for the WiMAX
code set.

Top-level convenience imports cover the most common entry points; the full
API lives in the sub-packages:

* :mod:`repro.core` — the decoder architecture and the design-space explorer,
* :mod:`repro.ldpc`, :mod:`repro.turbo` — the WiMAX code substrates,
* :mod:`repro.noc`, :mod:`repro.mapping` — the network and the code-to-NoC mapping,
* :mod:`repro.pe`, :mod:`repro.hw` — processing-element and hardware cost models,
* :mod:`repro.channel` — modulation, AWGN and quantisation,
* :mod:`repro.sim` — batched decoders and the Monte-Carlo BER runner,
* :mod:`repro.analysis` — paper reference data and table builders.
"""

from repro.core import (
    DecoderSpec,
    DesignPoint,
    DesignSpaceExplorer,
    NocDecoderArchitecture,
    WIMAX_DECODER_SPEC,
)
from repro.ldpc import LayeredMinSumDecoder, WimaxLdpcCode, wimax_ldpc_code
from repro.noc import NocConfiguration, RoutingAlgorithm
from repro.sim import (
    BatchFloodingDecoder,
    BatchLayeredDecoder,
    BatchTurboDecoder,
    BerPoint,
    BerRunner,
)
from repro.turbo import TurboDecoder, TurboEncoder

__version__ = "1.0.0"

__all__ = [
    "DecoderSpec",
    "WIMAX_DECODER_SPEC",
    "NocDecoderArchitecture",
    "DesignSpaceExplorer",
    "DesignPoint",
    "wimax_ldpc_code",
    "WimaxLdpcCode",
    "LayeredMinSumDecoder",
    "BatchFloodingDecoder",
    "BatchLayeredDecoder",
    "BatchTurboDecoder",
    "BerRunner",
    "BerPoint",
    "TurboEncoder",
    "TurboDecoder",
    "NocConfiguration",
    "RoutingAlgorithm",
    "__version__",
]

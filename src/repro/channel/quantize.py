"""Uniform LLR quantisation as used by the fixed-point decoder datapaths.

The paper (Section IV-B) represents channel LLRs, state metrics and
a-posteriori values on 7 bits and extrinsic/R values on 5 bits.  This module
implements the corresponding symmetric uniform quantiser: a configurable
number of total bits, of which a given number are fractional, with saturation
at the representable extremes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QuantizationSpec:
    """Fixed-point format: ``total_bits`` two's-complement bits, ``frac_bits`` fractional.

    The representable range is ``[-2**(total_bits-1), 2**(total_bits-1) - 1]``
    in integer steps of the quantised domain, i.e. ``[min_value, max_value]``
    after scaling back by ``2**-frac_bits``.
    """

    total_bits: int
    frac_bits: int = 0

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ConfigurationError(
                f"total_bits must be at least 2, got {self.total_bits}"
            )
        if self.frac_bits < 0 or self.frac_bits >= self.total_bits:
            raise ConfigurationError(
                f"frac_bits must be in [0, total_bits), got {self.frac_bits}"
            )

    @property
    def step(self) -> float:
        """Quantisation step in the real-valued domain."""
        return 2.0**-self.frac_bits

    @property
    def max_level(self) -> int:
        """Largest representable integer level."""
        return 2 ** (self.total_bits - 1) - 1

    @property
    def min_level(self) -> int:
        """Smallest representable integer level."""
        return -(2 ** (self.total_bits - 1))

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_level * self.step

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_level * self.step


#: 7-bit format used for channel LLRs, alpha/beta metrics and a-posteriori values.
CHANNEL_LLR_SPEC = QuantizationSpec(total_bits=7, frac_bits=1)

#: 5-bit format used for extrinsic information and the R messages of the LDPC core.
EXTRINSIC_SPEC = QuantizationSpec(total_bits=5, frac_bits=0)


class LLRQuantizer:
    """Uniform quantiser with saturation, symmetric by default.

    ``quantize`` returns integer levels (the values that live in the decoder
    memories); ``dequantize`` maps levels back to the real domain.  Both are
    vectorised over NumPy arrays.

    ``symmetric=True`` (the decoder-datapath default) saturates to
    ``[-max_level, max_level]``, so every representable level has a
    representable negation — a min-sum check node flips message signs, and a
    two's-complement ``min_level`` whose negation overflows the format would
    poison that datapath.  ``symmetric=False`` opts into the full asymmetric
    two's-complement range ``[min_level, max_level]`` (storage-format
    semantics, e.g. for memory-image round-trips).
    """

    def __init__(self, spec: QuantizationSpec, *, symmetric: bool = True):
        if not isinstance(spec, QuantizationSpec):
            raise ConfigurationError("LLRQuantizer requires a QuantizationSpec")
        self.spec = spec
        self.symmetric = bool(symmetric)

    @property
    def lowest_level(self) -> int:
        """The saturation floor actually applied: ``-max_level`` when symmetric."""
        return -self.spec.max_level if self.symmetric else self.spec.min_level

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Quantise real values to saturated integer levels (dtype ``int32``)."""
        arr = np.asarray(values, dtype=np.float64)
        levels = np.round(arr / self.spec.step)
        levels = np.clip(levels, self.lowest_level, self.spec.max_level)
        return levels.astype(np.int32)

    def dequantize(self, levels: np.ndarray) -> np.ndarray:
        """Map integer levels back to real values."""
        arr = np.asarray(levels, dtype=np.float64)
        return arr * self.spec.step

    def quantize_to_real(self, values: np.ndarray) -> np.ndarray:
        """Round-trip quantisation: the real values the fixed-point datapath sees."""
        return self.dequantize(self.quantize(values))

    def saturating_add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Add two arrays of integer levels with saturation at the quantiser limits."""
        result = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
        return np.clip(result, self.lowest_level, self.spec.max_level).astype(np.int32)

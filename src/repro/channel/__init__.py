"""Channel substrate: modulation, AWGN/fading noise, LLR quantisation, error counting.

The paper evaluates its decoder on WiMAX codes whose soft inputs are
log-likelihood ratios (LLRs) quantised to 7 bits (channel and a-posteriori
values) and 5 bits (extrinsic values).  This package provides the transmit
chains needed to produce such LLRs from random information bits — BPSK,
Gray QPSK and Gray 16-QAM mapping, AWGN and flat-Rayleigh (block or
per-symbol) channels with receiver CSI, and the uniform quantiser — plus
BER/FER counters used by the functional benchmarks.  See the "LLR scaling
conventions" section of ``docs/batching.md`` for the noise-variance and
CSI conventions shared by every demapper.
"""

from repro.channel.modulation import (
    BPSKModulator,
    Modulator,
    QAM16Modulator,
    QPSKModulator,
)
from repro.channel.awgn import AWGNChannel, ebn0_to_noise_sigma, snr_db_to_linear
from repro.channel.fading import FadedTransmission, RayleighFadingChannel
from repro.channel.quantize import (
    CHANNEL_LLR_SPEC,
    EXTRINSIC_SPEC,
    LLRQuantizer,
    QuantizationSpec,
)
from repro.channel.metrics import ErrorRateAccumulator, ErrorRateReport

__all__ = [
    "Modulator",
    "BPSKModulator",
    "QPSKModulator",
    "QAM16Modulator",
    "AWGNChannel",
    "RayleighFadingChannel",
    "FadedTransmission",
    "ebn0_to_noise_sigma",
    "snr_db_to_linear",
    "LLRQuantizer",
    "QuantizationSpec",
    "CHANNEL_LLR_SPEC",
    "EXTRINSIC_SPEC",
    "ErrorRateAccumulator",
    "ErrorRateReport",
]

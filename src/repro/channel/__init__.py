"""Channel substrate: modulation, AWGN noise, LLR quantisation, error counting.

The paper evaluates its decoder on WiMAX codes whose soft inputs are
log-likelihood ratios (LLRs) quantised to 7 bits (channel and a-posteriori
values) and 5 bits (extrinsic values).  This package provides the transmit
chain needed to produce such LLRs from random information bits — BPSK/QPSK
mapping, an AWGN channel and the uniform quantiser — plus BER/FER counters
used by the functional benchmarks.
"""

from repro.channel.modulation import BPSKModulator, QPSKModulator, Modulator
from repro.channel.awgn import AWGNChannel, ebn0_to_noise_sigma, snr_db_to_linear
from repro.channel.quantize import LLRQuantizer, QuantizationSpec
from repro.channel.metrics import ErrorRateAccumulator, ErrorRateReport

__all__ = [
    "Modulator",
    "BPSKModulator",
    "QPSKModulator",
    "AWGNChannel",
    "ebn0_to_noise_sigma",
    "snr_db_to_linear",
    "LLRQuantizer",
    "QuantizationSpec",
    "ErrorRateAccumulator",
    "ErrorRateReport",
]

"""Additive white Gaussian noise channel and Eb/N0 conversions."""

from __future__ import annotations

import warnings

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import make_rng


def snr_db_to_linear(snr_db: float) -> float:
    """Convert an SNR expressed in dB to a linear power ratio."""
    return float(10.0 ** (snr_db / 10.0))


def ebn0_to_noise_sigma(
    ebn0_db: float,
    code_rate: float,
    bits_per_symbol: int = 1,
    symbol_energy: float = 1.0,
) -> float:
    """Noise standard deviation (per real dimension) for a target Eb/N0.

    The mapping assumes unit-energy symbols carrying ``bits_per_symbol`` coded
    bits each, of which a fraction ``code_rate`` are information bits:

    ``Es/N0 = Eb/N0 * code_rate * bits_per_symbol`` and
    ``sigma^2 = Es / (2 * Es/N0)`` per real dimension for complex channels
    (``sigma^2 = Es / (2 * Es/N0)`` holds for real BPSK as well because the
    demapper treats the noise as one real dimension of variance ``N0/2``).
    """
    if not 0.0 < code_rate <= 1.0:
        raise ConfigurationError(f"code_rate must be in (0, 1], got {code_rate}")
    if bits_per_symbol <= 0:
        raise ConfigurationError(
            f"bits_per_symbol must be positive, got {bits_per_symbol}"
        )
    if symbol_energy <= 0:
        raise ConfigurationError(f"symbol_energy must be positive, got {symbol_energy}")
    esn0_linear = snr_db_to_linear(ebn0_db) * code_rate * bits_per_symbol
    noise_variance_per_dim = symbol_energy / (2.0 * esn0_linear)
    return float(np.sqrt(noise_variance_per_dim))


class AWGNChannel:
    """Memoryless AWGN channel for real or complex symbol streams.

    Parameters
    ----------
    noise_sigma:
        Noise standard deviation *per real dimension*.
    rng:
        Optional NumPy generator; a fresh seeded generator is created when
        omitted so results stay reproducible.
    """

    def __init__(self, noise_sigma: float, rng: np.random.Generator | None = None):
        if noise_sigma <= 0:
            raise ConfigurationError(f"noise_sigma must be positive, got {noise_sigma}")
        self.noise_sigma = float(noise_sigma)
        self._rng = rng if rng is not None else make_rng(0)

    @property
    def noise_variance(self) -> float:
        """Deprecated: noise variance *per real dimension* (``sigma^2``).

        This property used to promise the total variance seen by the demapper
        (``2*sigma^2`` for complex) while returning ``sigma^2`` — demapping a
        complex constellation with it produced LLRs scaled 2x too hot.  It
        cannot be fixed in place because the total depends on whether the
        symbols are complex, which only the caller knows: use
        :meth:`llr_noise_variance` instead.
        """
        warnings.warn(
            "AWGNChannel.noise_variance is ambiguous (per-dimension, NOT the "
            "demapper total for complex symbols); use "
            "llr_noise_variance(symbols_complex) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.noise_sigma**2

    def transmit(self, symbols: np.ndarray) -> np.ndarray:
        """Add white Gaussian noise to a block of channel symbols."""
        arr = np.asarray(symbols)
        if np.iscomplexobj(arr):
            noise = self._rng.normal(0.0, self.noise_sigma, size=arr.shape) + 1j * (
                self._rng.normal(0.0, self.noise_sigma, size=arr.shape)
            )
            return arr + noise
        return arr + self._rng.normal(0.0, self.noise_sigma, size=arr.shape)

    def llr_noise_variance(self, symbols_complex: bool) -> float:
        """Noise variance argument expected by the matching demapper.

        The demappers in :mod:`repro.channel.modulation` express LLRs in terms
        of the per-real-dimension variance times two for complex constellations
        (total noise power), so this helper centralises that convention.
        """
        if symbols_complex:
            return 2.0 * self.noise_sigma**2
        return self.noise_sigma**2

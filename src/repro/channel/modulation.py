"""Digital modulators used by the functional simulation chain.

The constellations the paper's multi-standard decoder actually faces are
provided: BPSK (the usual choice when characterising FEC codes), Gray-mapped
QPSK and Gray-mapped 16-QAM.  All map bits to unit-average-energy symbols
and demap received symbols to per-bit LLRs for an AWGN channel of known
noise variance — exactly for BPSK/QPSK, exact max-log for 16-QAM.

All methods are batched: bits and symbols may be one-dimensional (a single
frame) or carry any number of leading axes — a ``(batch, n)`` bit array maps
to a ``(batch, n_symbols)`` symbol array and back to ``(batch, n)`` LLRs —
which is what :class:`repro.sim.runner.BerRunner` relies on.

Fading support: ``demodulate_llr`` optionally takes per-symbol channel gains
(CSI).  With ``gains`` the demapper coherently equalises ``z = y / h`` and
scales each symbol's LLRs by ``|h|^2``, which is the exact (max-log for
16-QAM) LLR for ``y = h x + n`` with known ``h`` — see
:mod:`repro.channel.fading` for the channels that produce such gains and
``docs/batching.md`` ("LLR scaling conventions") for the conventions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError, DecodingError


class Modulator(ABC):
    """Abstract bit-to-symbol mapper with exact AWGN/fading LLR demapping."""

    #: Number of bits carried by one constellation symbol.
    bits_per_symbol: int = 0

    #: Whether this constellation produces complex channel symbols.
    complex_symbols: bool = True

    @abstractmethod
    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map 0/1 bits onto complex (or real) channel symbols.

        The last axis is the bit axis; leading axes (e.g. a batch axis) are
        preserved.
        """

    @abstractmethod
    def demodulate_llr(
        self,
        received: np.ndarray,
        noise_variance: float,
        gains: np.ndarray | None = None,
    ) -> np.ndarray:
        """Compute per-bit LLRs ``log P(b=0|y)/P(b=1|y)``.

        ``noise_variance`` follows the channel-layer convention: the *total*
        noise variance (``2*sigma^2``, both dimensions) for complex
        constellations and the per-dimension variance ``sigma^2`` for real
        ones — :meth:`repro.channel.awgn.AWGNChannel.llr_noise_variance`
        returns the right value either way.

        ``gains`` are optional per-symbol channel gains (CSI) broadcastable
        against the symbol axis — ``(batch, n_symbols)`` for i.i.d. fading,
        ``(batch, 1)`` for block fading; complex for complex constellations,
        positive real for BPSK.  The demapper then computes the coherent LLR
        for ``y = h x + n``.

        The last axis is the symbol axis; leading axes are preserved and the
        output's last axis has ``bits_per_symbol`` times as many entries.
        """

    def _check_bits(self, bits: np.ndarray) -> np.ndarray:
        arr = np.asarray(bits)
        if arr.ndim == 0:
            raise DecodingError("modulator expects at least a one-dimensional bit array")
        if np.iscomplexobj(arr):
            raise DecodingError("modulator expects only 0/1 values, got complex input")
        if arr.shape[-1] % self.bits_per_symbol != 0:
            raise DecodingError(
                f"bit count {arr.shape[-1]} is not a multiple of bits/symbol "
                f"({self.bits_per_symbol})"
            )
        if arr.size:
            if arr.min() < 0 or arr.max() > 1:
                raise DecodingError("modulator expects only 0/1 values")
            # Non-integral floats like 0.5 would pass the range check above and
            # be silently truncated to 0 by the int cast; reject them instead.
            if not np.issubdtype(arr.dtype, np.integer) and arr.dtype != np.bool_:
                if np.any(arr != np.rint(arr)):
                    raise DecodingError(
                        "modulator expects integral 0/1 values, got non-integral input"
                    )
        return arr.astype(np.int8)

    @staticmethod
    def _check_noise_variance(noise_variance: float) -> float:
        if noise_variance <= 0:
            raise ConfigurationError(
                f"noise variance must be positive, got {noise_variance}"
            )
        return float(noise_variance)

    def _check_gains(self, gains: np.ndarray, symbol_shape: tuple[int, ...]) -> np.ndarray:
        """Validate CSI gains and broadcast-check them against the symbols."""
        arr = np.asarray(gains)
        if self.complex_symbols:
            arr = arr.astype(np.complex128)
        else:
            if np.iscomplexobj(arr):
                raise DecodingError(
                    "real constellations take positive real gains (the fading "
                    "amplitude after coherent derotation), got complex gains"
                )
            arr = arr.astype(np.float64)
            if arr.size and arr.min() <= 0:
                raise DecodingError("fading gains for real constellations must be > 0")
        try:
            np.broadcast_shapes(arr.shape, symbol_shape)
        except ValueError as exc:
            raise DecodingError(
                f"gains of shape {arr.shape} do not broadcast against symbols "
                f"of shape {symbol_shape}"
            ) from exc
        if arr.size and np.any(arr == 0):
            raise DecodingError("fading gains must be non-zero")
        return arr


class BPSKModulator(Modulator):
    """Antipodal BPSK: bit 0 -> +1, bit 1 -> -1 (the LLR-friendly convention)."""

    bits_per_symbol = 1
    complex_symbols = False

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        arr = self._check_bits(bits)
        return 1.0 - 2.0 * arr.astype(np.float64)

    def demodulate_llr(
        self,
        received: np.ndarray,
        noise_variance: float,
        gains: np.ndarray | None = None,
    ) -> np.ndarray:
        sigma2 = self._check_noise_variance(noise_variance)
        obs = np.asarray(received, dtype=np.float64)
        if gains is None:
            # Exact LLR for BPSK over real AWGN: 2*y/sigma^2.
            return 2.0 * obs / sigma2
        g = self._check_gains(gains, obs.shape)
        # y = g*x + n, g known: LLR = 2*g*y/sigma^2.
        return 2.0 * g * obs / sigma2


class QPSKModulator(Modulator):
    """Gray-mapped QPSK with unit average symbol energy.

    Bit pair ``(b0, b1)`` maps to ``((1-2*b0) + 1j*(1-2*b1)) / sqrt(2)``; the
    in-phase and quadrature components therefore carry independent BPSK
    streams, which keeps the LLR demapper exact and simple.
    """

    bits_per_symbol = 2

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        arr = self._check_bits(bits)
        pairs = arr.reshape(*arr.shape[:-1], -1, 2).astype(np.float64)
        in_phase = 1.0 - 2.0 * pairs[..., 0]
        quadrature = 1.0 - 2.0 * pairs[..., 1]
        return (in_phase + 1j * quadrature) / np.sqrt(2.0)

    def demodulate_llr(
        self,
        received: np.ndarray,
        noise_variance: float,
        gains: np.ndarray | None = None,
    ) -> np.ndarray:
        sigma2 = self._check_noise_variance(noise_variance)
        obs = np.asarray(received, dtype=np.complex128)
        if gains is None:
            z = obs
            # Each axis is BPSK with amplitude 1/sqrt(2); LLR = 2*sqrt(2)*z_axis/sigma^2.
            scale = 2.0 * np.sqrt(2.0) / sigma2
        else:
            g = self._check_gains(gains, obs.shape)
            z = obs / g
            scale = 2.0 * np.sqrt(2.0) * np.abs(g) ** 2 / sigma2
        llrs = np.empty((*obs.shape[:-1], obs.shape[-1] * 2), dtype=np.float64)
        llrs[..., 0::2] = scale * z.real
        llrs[..., 1::2] = scale * z.imag
        return llrs


class QAM16Modulator(Modulator):
    """Gray-mapped 16-QAM with unit average symbol energy.

    Bit quadruple ``(b0, b1, b2, b3)`` maps the pair ``(b0, b1)`` onto the
    in-phase axis and ``(b2, b3)`` onto the quadrature axis, each through the
    Gray PAM-4 rule ``level = (1 - 2*b_sign) * (3 - 2*b_mag)`` (levels
    ``+3, +1, -1, -3`` for ``00, 01, 11, 10``), scaled by ``1/sqrt(10)`` so
    ``E[|s|^2] = 1``.

    ``demodulate_llr`` computes the *exact max-log* per-bit LLR: because the
    constellation is a product of two PAM-4 axes and each bit lives on one
    axis, the 16-point max-log metric reduces exactly to per-axis 4-level
    distance minima (the cross-axis term cancels), so the demapper is
    bit-for-bit the brute-force 16-point max-log at 4x less work.
    """

    bits_per_symbol = 4

    #: PAM-4 levels in Gray bit-pattern order (b_sign, b_mag) = 00, 01, 11, 10.
    _LEVELS = np.array([3.0, 1.0, -1.0, -3.0]) / np.sqrt(10.0)
    #: Level indices where the sign bit (first of the pair) is 0 / 1.
    _SIGN0 = np.array([0, 1])
    _SIGN1 = np.array([2, 3])
    #: Level indices where the magnitude bit (second of the pair) is 0 / 1.
    _MAG0 = np.array([0, 3])
    _MAG1 = np.array([1, 2])

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        arr = self._check_bits(bits)
        quads = arr.reshape(*arr.shape[:-1], -1, 4).astype(np.float64)
        in_phase = (1.0 - 2.0 * quads[..., 0]) * (3.0 - 2.0 * quads[..., 1])
        quadrature = (1.0 - 2.0 * quads[..., 2]) * (3.0 - 2.0 * quads[..., 3])
        return (in_phase + 1j * quadrature) / np.sqrt(10.0)

    def demodulate_llr(
        self,
        received: np.ndarray,
        noise_variance: float,
        gains: np.ndarray | None = None,
    ) -> np.ndarray:
        sigma2 = self._check_noise_variance(noise_variance)
        obs = np.asarray(received, dtype=np.complex128)
        if gains is None:
            z = obs
            inv_nv = 1.0 / sigma2
        else:
            g = self._check_gains(gains, obs.shape)
            z = obs / g
            # Equalising divides the noise by |h|^2, so the LLR scales by it.
            inv_nv = np.abs(g) ** 2 / sigma2
        llrs = np.empty((*obs.shape[:-1], obs.shape[-1] * 4), dtype=np.float64)
        for axis, component in enumerate((z.real, z.imag)):
            # (..., n_symbols, 4) squared distances to the four PAM levels.
            dist = (component[..., np.newaxis] - self._LEVELS) ** 2
            # Max-log LLR = (min over b=1 levels - min over b=0 levels) / N0.
            llrs[..., 2 * axis :: 4] = (
                dist[..., self._SIGN1].min(axis=-1) - dist[..., self._SIGN0].min(axis=-1)
            ) * inv_nv
            llrs[..., 2 * axis + 1 :: 4] = (
                dist[..., self._MAG1].min(axis=-1) - dist[..., self._MAG0].min(axis=-1)
            ) * inv_nv
        return llrs

"""Digital modulators used by the functional simulation chain.

Only the constellations needed by the WiMAX evaluation are provided: BPSK
(the usual choice when characterising FEC codes) and Gray-mapped QPSK.
Both map bits to unit-energy complex symbols and can demap received symbols
to exact LLRs for an AWGN channel of known noise variance.

All methods are batched: bits and symbols may be one-dimensional (a single
frame) or carry any number of leading axes — a ``(batch, n)`` bit array maps
to a ``(batch, n_symbols)`` symbol array and back to ``(batch, n)`` LLRs —
which is what :class:`repro.sim.runner.BerRunner` relies on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError, DecodingError


class Modulator(ABC):
    """Abstract bit-to-symbol mapper with exact AWGN LLR demapping."""

    #: Number of bits carried by one constellation symbol.
    bits_per_symbol: int = 0

    @abstractmethod
    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map 0/1 bits onto complex (or real) channel symbols.

        The last axis is the bit axis; leading axes (e.g. a batch axis) are
        preserved.
        """

    @abstractmethod
    def demodulate_llr(self, received: np.ndarray, noise_variance: float) -> np.ndarray:
        """Compute per-bit LLRs ``log P(b=0|y)/P(b=1|y)`` for AWGN observations.

        The last axis is the symbol axis; leading axes are preserved and the
        output's last axis has ``bits_per_symbol`` times as many entries.
        """

    def _check_bits(self, bits: np.ndarray) -> np.ndarray:
        arr = np.asarray(bits)
        if arr.ndim == 0:
            raise DecodingError("modulator expects at least a one-dimensional bit array")
        if arr.shape[-1] % self.bits_per_symbol != 0:
            raise DecodingError(
                f"bit count {arr.shape[-1]} is not a multiple of bits/symbol "
                f"({self.bits_per_symbol})"
            )
        if arr.size and (arr.min() < 0 or arr.max() > 1):
            raise DecodingError("modulator expects only 0/1 values")
        return arr.astype(np.int8)

    @staticmethod
    def _check_noise_variance(noise_variance: float) -> float:
        if noise_variance <= 0:
            raise ConfigurationError(
                f"noise variance must be positive, got {noise_variance}"
            )
        return float(noise_variance)


class BPSKModulator(Modulator):
    """Antipodal BPSK: bit 0 -> +1, bit 1 -> -1 (the LLR-friendly convention)."""

    bits_per_symbol = 1

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        arr = self._check_bits(bits)
        return 1.0 - 2.0 * arr.astype(np.float64)

    def demodulate_llr(self, received: np.ndarray, noise_variance: float) -> np.ndarray:
        sigma2 = self._check_noise_variance(noise_variance)
        obs = np.asarray(received, dtype=np.float64)
        # Exact LLR for BPSK over real AWGN: 2*y/sigma^2.
        return 2.0 * obs / sigma2


class QPSKModulator(Modulator):
    """Gray-mapped QPSK with unit average symbol energy.

    Bit pair ``(b0, b1)`` maps to ``((1-2*b0) + 1j*(1-2*b1)) / sqrt(2)``; the
    in-phase and quadrature components therefore carry independent BPSK
    streams, which keeps the LLR demapper exact and simple.
    """

    bits_per_symbol = 2

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        arr = self._check_bits(bits)
        pairs = arr.reshape(*arr.shape[:-1], -1, 2).astype(np.float64)
        in_phase = 1.0 - 2.0 * pairs[..., 0]
        quadrature = 1.0 - 2.0 * pairs[..., 1]
        return (in_phase + 1j * quadrature) / np.sqrt(2.0)

    def demodulate_llr(self, received: np.ndarray, noise_variance: float) -> np.ndarray:
        sigma2 = self._check_noise_variance(noise_variance)
        obs = np.asarray(received, dtype=np.complex128)
        # Each axis is BPSK with amplitude 1/sqrt(2); LLR = 2*sqrt(2)*y_axis/sigma^2.
        scale = 2.0 * np.sqrt(2.0) / sigma2
        llrs = np.empty((*obs.shape[:-1], obs.shape[-1] * 2), dtype=np.float64)
        llrs[..., 0::2] = scale * obs.real
        llrs[..., 1::2] = scale * obs.imag
        return llrs

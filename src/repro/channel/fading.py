"""Flat Rayleigh-fading channels with receiver-side CSI.

The paper's architecture targets mobile standards (WiMAX, Wi-Fi, 3GPP) whose
channels are not AWGN-only; this module adds the simplest non-trivial model
used to exercise a decoder's robustness: frequency-flat Rayleigh fading,

``y = h * x + n``,

with ``h`` either drawn i.i.d. per symbol (fast fading, the classic
fully-interleaved model) or once per frame (block fading), and ``n`` the same
AWGN the :class:`~repro.channel.awgn.AWGNChannel` adds.  Gains are normalised
to ``E[|h|^2] = 1`` so a given ``noise_sigma`` corresponds to the same
*average* Eb/N0 as over AWGN — Rayleigh BER curves are therefore directly
comparable to (and strictly worse than) their AWGN counterparts at equal
Eb/N0.

The receiver is assumed coherent with perfect CSI: :meth:`transmit` returns
the received samples *and* the gains, and the demappers in
:mod:`repro.channel.modulation` accept those gains through their optional
``gains=`` argument (equalise ``z = y/h``, scale LLRs by ``|h|^2``).  For
real constellations (BPSK) the channel applies the Rayleigh *amplitude*
``|h|`` with real noise — the exact real-valued equivalent of a coherently
derotated complex fade.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import make_rng


class FadedTransmission(NamedTuple):
    """What a fading channel hands back: observations plus the CSI behind them.

    ``received`` has the symbols' shape; ``gains`` broadcasts against it —
    equal shape for per-symbol fading, ``(..., 1)`` (one gain per frame) for
    block fading.
    """

    received: np.ndarray
    gains: np.ndarray


class RayleighFadingChannel:
    """Frequency-flat Rayleigh fading plus AWGN, with perfect-CSI output.

    Parameters
    ----------
    noise_sigma:
        Noise standard deviation *per real dimension* (the same convention as
        :class:`~repro.channel.awgn.AWGNChannel`).
    rng:
        Optional NumPy generator; a fresh seeded generator is created when
        omitted so results stay reproducible.
    block_fading:
        ``False`` (default) draws an independent gain per symbol; ``True``
        draws one gain per frame (per row of the leading axis) and holds it
        over the whole frame.  Block fading of a 1-D symbol vector means one
        single gain for the entire input.
    """

    def __init__(
        self,
        noise_sigma: float,
        rng: np.random.Generator | None = None,
        *,
        block_fading: bool = False,
    ):
        if noise_sigma <= 0:
            raise ConfigurationError(f"noise_sigma must be positive, got {noise_sigma}")
        self.noise_sigma = float(noise_sigma)
        self.block_fading = bool(block_fading)
        self._rng = rng if rng is not None else make_rng(0)

    def _gain_shape(self, symbol_shape: tuple[int, ...]) -> tuple[int, ...]:
        if not self.block_fading:
            return symbol_shape
        return (*symbol_shape[:-1], 1)

    def _draw_gains(self, shape: tuple[int, ...], symbols_complex: bool) -> np.ndarray:
        # Complex h = (g_r + j*g_i)/sqrt(2), g ~ N(0,1): E[|h|^2] = 1 and |h|
        # is Rayleigh.  Real constellations see the amplitude |h| directly.
        real = self._rng.normal(0.0, 1.0, size=shape)
        imag = self._rng.normal(0.0, 1.0, size=shape)
        h = (real + 1j * imag) / np.sqrt(2.0)
        return h if symbols_complex else np.abs(h)

    def transmit(self, symbols: np.ndarray) -> FadedTransmission:
        """Fade and add noise to a block of channel symbols; return CSI too."""
        arr = np.asarray(symbols)
        symbols_complex = bool(np.iscomplexobj(arr))
        gains = self._draw_gains(self._gain_shape(arr.shape), symbols_complex)
        faded = arr * gains
        if symbols_complex:
            noise = self._rng.normal(0.0, self.noise_sigma, size=arr.shape) + 1j * (
                self._rng.normal(0.0, self.noise_sigma, size=arr.shape)
            )
        else:
            noise = self._rng.normal(0.0, self.noise_sigma, size=arr.shape)
        return FadedTransmission(received=faded + noise, gains=gains)

    def llr_noise_variance(self, symbols_complex: bool) -> float:
        """Noise variance argument expected by the matching demapper.

        Identical to :meth:`repro.channel.awgn.AWGNChannel.llr_noise_variance`
        — fading changes the per-symbol signal scale (handled by the CSI
        gains), not the additive-noise convention.
        """
        if symbols_complex:
            return 2.0 * self.noise_sigma**2
        return self.noise_sigma**2

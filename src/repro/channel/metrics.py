"""Bit-error-rate and frame-error-rate accumulation for the functional benches."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecodingError


@dataclass(frozen=True)
class ErrorRateReport:
    """Immutable summary emitted by :class:`ErrorRateAccumulator`."""

    frames: int
    bit_errors: int
    frame_errors: int
    total_bits: int

    @property
    def ber(self) -> float:
        """Bit error rate; 0.0 when no bits have been counted."""
        return self.bit_errors / self.total_bits if self.total_bits else 0.0

    @property
    def fer(self) -> float:
        """Frame error rate; 0.0 when no frames have been counted."""
        return self.frame_errors / self.frames if self.frames else 0.0

    def __str__(self) -> str:
        return (
            f"frames={self.frames} BER={self.ber:.3e} FER={self.fer:.3e} "
            f"(bit errors {self.bit_errors}/{self.total_bits})"
        )


class ErrorRateAccumulator:
    """Accumulate bit/frame error counts over successive decoded frames."""

    def __init__(self) -> None:
        self._frames = 0
        self._bit_errors = 0
        self._frame_errors = 0
        self._total_bits = 0

    def update(self, transmitted: np.ndarray, decoded: np.ndarray) -> int:
        """Compare one decoded frame against the transmitted bits.

        Returns the number of bit errors in this frame.
        """
        tx = np.asarray(transmitted, dtype=np.int8)
        rx = np.asarray(decoded, dtype=np.int8)
        if tx.shape != rx.shape:
            raise DecodingError(
                f"frame shapes differ: transmitted {tx.shape} vs decoded {rx.shape}"
            )
        errors = int(np.count_nonzero(tx != rx))
        self._frames += 1
        self._bit_errors += errors
        self._total_bits += tx.size
        if errors:
            self._frame_errors += 1
        return errors

    @property
    def frames(self) -> int:
        """Number of frames accumulated so far."""
        return self._frames

    def report(self) -> ErrorRateReport:
        """Snapshot the current counts as an immutable report."""
        return ErrorRateReport(
            frames=self._frames,
            bit_errors=self._bit_errors,
            frame_errors=self._frame_errors,
            total_bits=self._total_bits,
        )

    def reset(self) -> None:
        """Clear all counters."""
        self._frames = 0
        self._bit_errors = 0
        self._frame_errors = 0
        self._total_bits = 0

"""Bit-level <-> symbol-level extrinsic conversion (BTS / STB units).

The paper (Section IV-B, following [23]/[24]) transports *bit-level* extrinsic
information over the NoC instead of symbol-level vectors, cutting the network
payload by roughly one third for a double-binary code at the cost of about
0.2 dB.  The Symbol-To-Bit (STB) unit marginalises the length-4 symbol
extrinsic into two bit LLRs before transmission, and the Bit-To-Symbol (BTS)
unit rebuilds a rank-1 (independent-bits) approximation of the symbol vector
at the receiving PE.

Conventions: symbol vectors hold ``log p(u)/p(0)`` with ``u = 2A + B``;
bit LLRs hold ``log p(bit=0)/p(bit=1)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DecodingError


def _maxstar_pair(x: np.ndarray, y: np.ndarray, exact: bool) -> np.ndarray:
    """Pairwise max* of two arrays."""
    if not exact:
        return np.maximum(x, y)
    peak = np.maximum(x, y)
    return peak + np.log1p(np.exp(-np.abs(x - y)))


def symbol_to_bit_extrinsic(symbol_extrinsic: np.ndarray, exact: bool = False) -> np.ndarray:
    """Marginalise symbol-level extrinsic into bit-level LLRs (the STB unit).

    Parameters
    ----------
    symbol_extrinsic:
        ``(..., n_couples, 4)`` array of ``log p(u)/p(0)`` values; any leading
        axes (e.g. a batch axis) are preserved.
    exact:
        Use the exact Jacobian (log-sum-exp) marginalisation instead of the
        max-log approximation.

    Returns
    -------
    numpy.ndarray
        ``(..., n_couples, 2)`` bit LLRs ``(LLR_A, LLR_B)``.
    """
    vals = np.asarray(symbol_extrinsic, dtype=np.float64)
    if vals.ndim < 2 or vals.shape[-1] != 4:
        raise DecodingError("symbol_extrinsic must have shape (..., n_couples, 4)")
    # Symbols: 0 = (A=0,B=0), 1 = (0,1), 2 = (1,0), 3 = (1,1).
    llr_a = _maxstar_pair(vals[..., 0], vals[..., 1], exact) - _maxstar_pair(
        vals[..., 2], vals[..., 3], exact
    )
    llr_b = _maxstar_pair(vals[..., 0], vals[..., 2], exact) - _maxstar_pair(
        vals[..., 1], vals[..., 3], exact
    )
    return np.stack([llr_a, llr_b], axis=-1)


def bit_to_symbol_extrinsic(bit_llrs: np.ndarray) -> np.ndarray:
    """Rebuild symbol-level extrinsic from bit LLRs (the BTS unit).

    Assumes the two bits are independent, i.e. returns the rank-1
    approximation ``log p(u)/p(0) = -[A(u)=1]*LLR_A - [B(u)=1]*LLR_B``.
    Accepts ``(..., n_couples, 2)`` arrays; leading axes are preserved.
    """
    llrs = np.asarray(bit_llrs, dtype=np.float64)
    if llrs.ndim < 2 or llrs.shape[-1] != 2:
        raise DecodingError("bit_llrs must have shape (..., n_couples, 2)")
    symbols = np.arange(4)
    a_bits = (symbols >> 1) & 1
    b_bits = symbols & 1
    return -(a_bits * llrs[..., 0:1] + b_bits * llrs[..., 1:2])


def noc_payload_bits(symbol_level: bool, bits_per_value: int = 5) -> int:
    """Payload width (bits) of one extrinsic message on the NoC.

    A double-binary symbol-level message carries three non-reference vector
    elements; a bit-level message carries two bit LLRs.  This is the ~1/3
    payload reduction quoted by the paper.
    """
    if bits_per_value <= 0:
        raise DecodingError(f"bits_per_value must be positive, got {bits_per_value}")
    values = 3 if symbol_level else 2
    return values * bits_per_value

"""The WiMAX CTC (almost-regular) interleaver.

IEEE 802.16e interleaves *couples* of bits in two steps:

1. **Intra-couple swap** — for every odd couple index ``j`` the two bits of
   the couple are swapped (``(A, B) -> (B, A)``).
2. **Inter-couple permutation** — couple ``j`` of the interleaved sequence is
   taken from position ``P(j)`` of the natural sequence, where::

       j mod 4 == 0:  P(j) = (P0*j + 1)            mod N
       j mod 4 == 1:  P(j) = (P0*j + 1 + N/2 + P1) mod N
       j mod 4 == 2:  P(j) = (P0*j + 1 + P2)       mod N
       j mod 4 == 3:  P(j) = (P0*j + 1 + N/2 + P3) mod N

``(P0, P1, P2, P3)`` depend on the block size ``N`` (in couples) and are
listed in the standard; the table below covers the WiMAX CTC block sizes,
including ``N = 2400`` couples (4800 bits), the code used in the paper's
Table II / Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CodeDefinitionError

#: Interleaver parameters per block size in couples: N -> (P0, P1, P2, P3).
CTC_INTERLEAVER_PARAMETERS: dict[int, tuple[int, int, int, int]] = {
    24: (5, 0, 0, 0),
    36: (11, 18, 0, 18),
    48: (13, 24, 0, 24),
    72: (11, 6, 0, 6),
    96: (7, 48, 24, 72),
    108: (11, 54, 56, 2),
    120: (13, 60, 0, 60),
    144: (17, 74, 72, 2),
    180: (11, 90, 0, 90),
    192: (11, 96, 48, 144),
    216: (13, 108, 0, 108),
    240: (13, 120, 60, 180),
    480: (53, 62, 12, 2),
    960: (43, 64, 300, 824),
    1440: (43, 720, 360, 540),
    1920: (31, 8, 24, 16),
    2400: (53, 66, 24, 2),
}


def supported_ctc_block_sizes() -> tuple[int, ...]:
    """Block sizes (in couples) with built-in interleaver parameters."""
    return tuple(sorted(CTC_INTERLEAVER_PARAMETERS))


@dataclass(frozen=True)
class CTCInterleaver:
    """WiMAX CTC interleaver for a block of ``n_couples`` couples.

    The object exposes the permutation ``P`` (``interleaved[j]`` comes from
    natural position ``permutation[j]``) and the per-position swap flags of
    step 1, plus helpers to (de)interleave couple sequences represented as
    symbols ``u = 2A + B``.
    """

    n_couples: int
    p0: int
    p1: int
    p2: int
    p3: int

    @classmethod
    def for_block_size(cls, n_couples: int) -> "CTCInterleaver":
        """Build the interleaver for a standard WiMAX block size."""
        if n_couples not in CTC_INTERLEAVER_PARAMETERS:
            raise CodeDefinitionError(
                f"no CTC interleaver parameters for N={n_couples} couples; "
                f"supported sizes: {supported_ctc_block_sizes()}"
            )
        p0, p1, p2, p3 = CTC_INTERLEAVER_PARAMETERS[n_couples]
        return cls(n_couples=n_couples, p0=p0, p1=p1, p2=p2, p3=p3)

    def __post_init__(self) -> None:
        if self.n_couples <= 0 or self.n_couples % 4 != 0:
            raise CodeDefinitionError(
                f"CTC block size must be a positive multiple of 4 couples, got {self.n_couples}"
            )
        perm = self.permutation()
        if np.unique(perm).size != self.n_couples:
            raise CodeDefinitionError(
                f"CTC interleaver parameters {self.p0, self.p1, self.p2, self.p3} do not "
                f"produce a permutation for N={self.n_couples}"
            )

    # ------------------------------------------------------------------ #
    # Permutation construction
    # ------------------------------------------------------------------ #
    def permutation(self) -> np.ndarray:
        """Return ``P`` such that interleaved couple ``j`` = natural couple ``P(j)``."""
        n = self.n_couples
        half = n // 2
        j = np.arange(n, dtype=np.int64)
        offsets = np.zeros(n, dtype=np.int64)
        offsets[j % 4 == 1] = half + self.p1
        offsets[j % 4 == 2] = self.p2
        offsets[j % 4 == 3] = half + self.p3
        return (self.p0 * j + 1 + offsets) % n

    def swap_flags(self) -> np.ndarray:
        """Step-1 swap flag per *natural* couple index (1 = couple bits swapped)."""
        return (np.arange(self.n_couples, dtype=np.int64) % 2).astype(np.int8)

    # ------------------------------------------------------------------ #
    # Symbol-domain helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _swap_symbols(symbols: np.ndarray, flags: np.ndarray) -> np.ndarray:
        """Swap the two bits of each couple where ``flags`` is set (1 <-> 2)."""
        out = symbols.copy()
        swap = flags.astype(bool)
        ones = swap & (symbols == 1)
        twos = swap & (symbols == 2)
        out[ones] = 2
        out[twos] = 1
        return out

    def interleave_symbols(self, symbols: np.ndarray) -> np.ndarray:
        """Produce the sequence seen by the second constituent encoder.

        The couple axis is the last one; any leading axes (e.g. a batch of
        frames) are preserved.
        """
        arr = np.asarray(symbols, dtype=np.int64)
        if arr.ndim == 0 or arr.shape[-1] != self.n_couples:
            raise CodeDefinitionError(
                f"expected {self.n_couples} couples on the last axis, got shape {arr.shape}"
            )
        swapped = self._swap_symbols(arr, self.swap_flags())
        return swapped[..., self.permutation()]

    def deinterleave_symbols(self, symbols: np.ndarray) -> np.ndarray:
        """Invert :meth:`interleave_symbols` (leading axes preserved)."""
        arr = np.asarray(symbols, dtype=np.int64)
        if arr.ndim == 0 or arr.shape[-1] != self.n_couples:
            raise CodeDefinitionError(
                f"expected {self.n_couples} couples on the last axis, got shape {arr.shape}"
            )
        perm = self.permutation()
        natural_swapped = np.empty_like(arr)
        natural_swapped[..., perm] = arr
        return self._swap_symbols(natural_swapped, self.swap_flags())

    # ------------------------------------------------------------------ #
    # Metrics used by the NoC traffic generator
    # ------------------------------------------------------------------ #
    def spread(self) -> int:
        """Minimum circular distance ``|P(j) - P(j+1)|`` (interleaver spread)."""
        perm = self.permutation()
        n = self.n_couples
        diffs = np.abs(np.diff(perm))
        circular = np.minimum(diffs, n - diffs)
        return int(circular.min())

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"CTC interleaver N={self.n_couples} couples "
            f"(P0={self.p0}, P1={self.p1}, P2={self.p2}, P3={self.p3}), "
            f"spread={self.spread()}"
        )

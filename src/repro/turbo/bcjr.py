"""Symbol-level BCJR decoding of the duo-binary constituent code.

Implements paper eqs. (1)-(5): branch metrics ``gamma`` from channel and
a-priori information, forward/backward recursions ``alpha``/``beta`` with the
max* operator, and a-posteriori / extrinsic outputs per uncoded symbol.

Two flavours of max* are provided:

* ``"max-log"`` — plain maximum (Max-Log-MAP), the paper's choice for
  double-binary codes, optionally with extrinsic scaling ``sigma <= 1``;
* ``"log-map"`` — maximum plus the Jacobian correction term (Log-MAP), the
  exact algorithm the correction LUT approximates.

Symbol-level quantities (a-priori, a-posteriori, extrinsic) are represented
as length-4 vectors of log-probability differences with respect to symbol 0,
i.e. element ``u`` holds ``log p(u)/p(0)`` (element 0 is always 0).

Since the batched turbo engine landed, this module is a thin per-frame
facade: the recursions themselves live in
:class:`repro.sim.turbo_batch.BatchBCJR` (dense tensor ops over
``(batch, n_couples, 8, 4)`` arrays) and :meth:`BCJRDecoder.decode` runs
them with ``batch=1``.  Decoding many frames?  Use the batch kernel (or
:class:`repro.sim.turbo_batch.BatchTurboDecoder`) directly — stacking frames
on the batch axis returns bit-identical results at a fraction of the
per-frame cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecodingError
from repro.turbo.trellis import NUM_STATES, NUM_SYMBOLS, DuoBinaryTrellis


@dataclass
class BCJRResult:
    """Output of one SISO activation on a block of ``n_couples`` trellis steps."""

    aposteriori: np.ndarray
    extrinsic: np.ndarray
    hard_symbols: np.ndarray
    final_alpha: np.ndarray
    final_beta: np.ndarray


class BCJRDecoder:
    """Max-Log-MAP / Log-MAP decoder over the duo-binary trellis.

    All arithmetic delegates to :class:`repro.sim.turbo_batch.BatchBCJR`
    with ``batch=1``, so this class and the batch kernel agree bit-for-bit
    by construction.

    Parameters
    ----------
    trellis:
        The (shared, stateless) trellis section.
    algorithm:
        ``"max-log"`` or ``"log-map"``.
    extrinsic_scale:
        The ``sigma <= 1`` factor applied to the extrinsic output
        (paper Section II-A); 0.75 is the usual Max-Log-MAP choice and the
        factor is forced to 1.0 for Log-MAP.
    """

    def __init__(
        self,
        trellis: DuoBinaryTrellis | None = None,
        algorithm: str = "max-log",
        extrinsic_scale: float = 0.75,
    ):
        # Imported lazily: repro.sim.turbo_batch itself imports repro.turbo.
        from repro.sim.turbo_batch import BatchBCJR

        self._batch = BatchBCJR(
            trellis, algorithm=algorithm, extrinsic_scale=extrinsic_scale
        )

    @property
    def trellis(self) -> DuoBinaryTrellis:
        """The trellis section this decoder runs on."""
        return self._batch.trellis

    @property
    def algorithm(self) -> str:
        """``"max-log"`` or ``"log-map"``."""
        return self._batch.algorithm

    @property
    def extrinsic_scale(self) -> float:
        """Scaling factor applied to the extrinsic output (1.0 for Log-MAP)."""
        return self._batch.extrinsic_scale

    def systematic_symbol_metric(self, systematic_llrs: np.ndarray) -> np.ndarray:
        """Per-symbol systematic metric differences ``lambda_k[c_u] - lambda_k[c_0]``."""
        return self._batch.systematic_symbol_metric(
            np.asarray(systematic_llrs, dtype=np.float64)
        )

    def decode(
        self,
        systematic_llrs: np.ndarray,
        parity_llrs: np.ndarray,
        apriori: np.ndarray | None = None,
        initial_alpha: np.ndarray | None = None,
        initial_beta: np.ndarray | None = None,
    ) -> BCJRResult:
        """Run one SISO activation.

        Parameters
        ----------
        systematic_llrs:
            ``(n_couples, 2)`` channel LLRs of the systematic bits (A, B).
        parity_llrs:
            ``(n_couples, 2)`` channel LLRs of the parity bits (Y, W); use 0
            for punctured bits.
        apriori:
            ``(n_couples, 4)`` symbol-level a-priori information (log p(u)/p(0));
            zeros when omitted.
        initial_alpha / initial_beta:
            Length-8 state-metric initialisations for the circular trellis
            (metric inheritance across turbo iterations); uniform when omitted.
        """
        sys_llrs = np.asarray(systematic_llrs, dtype=np.float64)
        par_llrs = np.asarray(parity_llrs, dtype=np.float64)
        if sys_llrs.ndim != 2 or sys_llrs.shape[1] != 2:
            raise DecodingError("systematic_llrs must have shape (n_couples, 2)")
        if par_llrs.shape != sys_llrs.shape:
            raise DecodingError("parity_llrs must have the same shape as systematic_llrs")
        n = sys_llrs.shape[0]
        if apriori is not None:
            apriori = np.asarray(apriori, dtype=np.float64)
            if apriori.shape != (n, NUM_SYMBOLS):
                raise DecodingError(
                    f"apriori must have shape ({n}, {NUM_SYMBOLS}), got {apriori.shape}"
                )
            apriori = apriori[None, :, :]
        result = self._batch.decode_batch(
            sys_llrs[None, :, :],
            par_llrs[None, :, :],
            apriori=apriori,
            initial_alpha=self._lift_init(initial_alpha),
            initial_beta=self._lift_init(initial_beta),
        )
        return BCJRResult(
            aposteriori=result.aposteriori[0],
            extrinsic=result.extrinsic[0],
            hard_symbols=result.hard_symbols[0],
            final_alpha=result.final_alpha[0],
            final_beta=result.final_beta[0],
        )

    @staticmethod
    def _lift_init(init: np.ndarray | None) -> np.ndarray | None:
        if init is None:
            return None
        arr = np.asarray(init, dtype=np.float64)
        if arr.shape != (NUM_STATES,):
            raise DecodingError(f"state-metric init must have shape ({NUM_STATES},)")
        return arr[None, :]

"""Symbol-level BCJR decoding of the duo-binary constituent code.

Implements paper eqs. (1)-(5): branch metrics ``gamma`` from channel and
a-priori information, forward/backward recursions ``alpha``/``beta`` with the
max* operator, and a-posteriori / extrinsic outputs per uncoded symbol.

Two flavours of max* are provided:

* ``"max-log"`` — plain maximum (Max-Log-MAP), the paper's choice for
  double-binary codes, optionally with extrinsic scaling ``sigma <= 1``;
* ``"log-map"`` — maximum plus the Jacobian correction term (Log-MAP), the
  exact algorithm the correction LUT approximates.

Symbol-level quantities (a-priori, a-posteriori, extrinsic) are represented
as length-4 vectors of log-probability differences with respect to symbol 0,
i.e. element ``u`` holds ``log p(u)/p(0)`` (element 0 is always 0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecodingError
from repro.turbo.trellis import NUM_STATES, NUM_SYMBOLS, DuoBinaryTrellis

_NEG_INF = -1.0e30


@dataclass
class BCJRResult:
    """Output of one SISO activation on a block of ``n_couples`` trellis steps."""

    aposteriori: np.ndarray
    extrinsic: np.ndarray
    hard_symbols: np.ndarray
    final_alpha: np.ndarray
    final_beta: np.ndarray


class BCJRDecoder:
    """Max-Log-MAP / Log-MAP decoder over the duo-binary trellis.

    Parameters
    ----------
    trellis:
        The (shared, stateless) trellis section.
    algorithm:
        ``"max-log"`` or ``"log-map"``.
    extrinsic_scale:
        The ``sigma <= 1`` factor applied to the extrinsic output
        (paper Section II-A); 0.75 is the usual Max-Log-MAP choice and the
        factor is forced to 1.0 for Log-MAP.
    """

    def __init__(
        self,
        trellis: DuoBinaryTrellis | None = None,
        algorithm: str = "max-log",
        extrinsic_scale: float = 0.75,
    ):
        if algorithm not in ("max-log", "log-map"):
            raise DecodingError(
                f"algorithm must be 'max-log' or 'log-map', got {algorithm!r}"
            )
        if not 0.0 < extrinsic_scale <= 1.0:
            raise DecodingError(
                f"extrinsic_scale must be in (0, 1], got {extrinsic_scale}"
            )
        self.trellis = trellis if trellis is not None else DuoBinaryTrellis()
        self.algorithm = algorithm
        self.extrinsic_scale = 1.0 if algorithm == "log-map" else float(extrinsic_scale)
        self._next_state = self.trellis.next_state_table()  # (8, 4)
        self._parity = self.trellis.parity_table()  # (8, 4, 2)
        # Systematic bits of each symbol: a = u >> 1, b = u & 1.
        symbols = np.arange(NUM_SYMBOLS)
        self._sym_a = (symbols >> 1) & 1
        self._sym_b = symbols & 1

    # ------------------------------------------------------------------ #
    # max* helpers
    # ------------------------------------------------------------------ #
    def _maxstar_reduce(self, values: np.ndarray, axis: int) -> np.ndarray:
        """Reduce with max* along ``axis``."""
        if self.algorithm == "max-log":
            return values.max(axis=axis)
        return np.log(np.sum(np.exp(values - values.max(axis=axis, keepdims=True)), axis=axis)) + values.max(axis=axis)

    # ------------------------------------------------------------------ #
    # Branch metrics
    # ------------------------------------------------------------------ #
    def _branch_metrics(
        self,
        systematic_llrs: np.ndarray,
        parity_llrs: np.ndarray,
        apriori: np.ndarray,
    ) -> np.ndarray:
        """Compute ``gamma`` of shape ``(n_couples, 8, 4)``.

        Bit metrics use the symmetric correlation form ``0.5 * (1 - 2*bit) * LLR``
        with the convention ``LLR = log p(0)/p(1)``.
        """
        n = systematic_llrs.shape[0]
        # Systematic contribution per (step, symbol).
        sys_metric = 0.5 * (
            (1 - 2 * self._sym_a)[None, :] * systematic_llrs[:, 0:1]
            + (1 - 2 * self._sym_b)[None, :] * systematic_llrs[:, 1:2]
        )  # (n, 4)
        # Parity contribution per (step, state, symbol).
        y_bits = self._parity[:, :, 0]  # (8, 4)
        w_bits = self._parity[:, :, 1]  # (8, 4)
        par_metric = 0.5 * (
            (1 - 2 * y_bits)[None, :, :] * parity_llrs[:, 0][:, None, None]
            + (1 - 2 * w_bits)[None, :, :] * parity_llrs[:, 1][:, None, None]
        )  # (n, 8, 4)
        gamma = par_metric + sys_metric[:, None, :] + apriori[:, None, :]
        return gamma

    def systematic_symbol_metric(self, systematic_llrs: np.ndarray) -> np.ndarray:
        """Per-symbol systematic metric differences ``lambda_k[c_u] - lambda_k[c_0]``."""
        sys_metric = 0.5 * (
            (1 - 2 * self._sym_a)[None, :] * systematic_llrs[:, 0:1]
            + (1 - 2 * self._sym_b)[None, :] * systematic_llrs[:, 1:2]
        )
        return sys_metric - sys_metric[:, 0:1]

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def decode(
        self,
        systematic_llrs: np.ndarray,
        parity_llrs: np.ndarray,
        apriori: np.ndarray | None = None,
        initial_alpha: np.ndarray | None = None,
        initial_beta: np.ndarray | None = None,
    ) -> BCJRResult:
        """Run one SISO activation.

        Parameters
        ----------
        systematic_llrs:
            ``(n_couples, 2)`` channel LLRs of the systematic bits (A, B).
        parity_llrs:
            ``(n_couples, 2)`` channel LLRs of the parity bits (Y, W); use 0
            for punctured bits.
        apriori:
            ``(n_couples, 4)`` symbol-level a-priori information (log p(u)/p(0));
            zeros when omitted.
        initial_alpha / initial_beta:
            Length-8 state-metric initialisations for the circular trellis
            (metric inheritance across turbo iterations); uniform when omitted.
        """
        sys_llrs = np.asarray(systematic_llrs, dtype=np.float64)
        par_llrs = np.asarray(parity_llrs, dtype=np.float64)
        if sys_llrs.ndim != 2 or sys_llrs.shape[1] != 2:
            raise DecodingError("systematic_llrs must have shape (n_couples, 2)")
        if par_llrs.shape != sys_llrs.shape:
            raise DecodingError("parity_llrs must have the same shape as systematic_llrs")
        n = sys_llrs.shape[0]
        if apriori is None:
            apriori_arr = np.zeros((n, NUM_SYMBOLS), dtype=np.float64)
        else:
            apriori_arr = np.asarray(apriori, dtype=np.float64)
            if apriori_arr.shape != (n, NUM_SYMBOLS):
                raise DecodingError(
                    f"apriori must have shape ({n}, {NUM_SYMBOLS}), got {apriori_arr.shape}"
                )
        gamma = self._branch_metrics(sys_llrs, par_llrs, apriori_arr)

        alpha = np.zeros((n + 1, NUM_STATES), dtype=np.float64)
        beta = np.zeros((n + 1, NUM_STATES), dtype=np.float64)
        alpha[0] = self._normalize_init(initial_alpha)
        beta[n] = self._normalize_init(initial_beta)

        next_flat = self._next_state.reshape(-1)  # (32,)
        # Forward recursion (eq. (3)).
        for k in range(n):
            candidates = (alpha[k][:, None] + gamma[k]).reshape(-1)  # (32,)
            new_alpha = np.full(NUM_STATES, _NEG_INF)
            if self.algorithm == "max-log":
                np.maximum.at(new_alpha, next_flat, candidates)
            else:
                new_alpha = self._scatter_logsumexp(next_flat, candidates)
            new_alpha -= new_alpha.max()
            alpha[k + 1] = new_alpha
        # Backward recursion (eq. (4)).
        for k in range(n - 1, -1, -1):
            incoming = beta[k + 1][self._next_state] + gamma[k]  # (8, 4)
            new_beta = self._maxstar_reduce(incoming, axis=1)
            new_beta -= new_beta.max()
            beta[k] = new_beta

        # A-posteriori per symbol (eq. (1) before subtracting the systematic part).
        b_metric = alpha[:-1][:, :, None] + gamma + beta[1:][
            np.arange(n)[:, None, None], self._next_state[None, :, :]
        ]  # (n, 8, 4)
        apo_raw = self._maxstar_reduce(b_metric, axis=1)  # (n, 4)
        apo = apo_raw - apo_raw[:, 0:1]

        sys_diff = self.systematic_symbol_metric(sys_llrs)
        apr_diff = apriori_arr - apriori_arr[:, 0:1]
        extrinsic = self.extrinsic_scale * (apo - sys_diff - apr_diff)

        hard_symbols = np.argmax(apo, axis=1).astype(np.int64)
        return BCJRResult(
            aposteriori=apo,
            extrinsic=extrinsic,
            hard_symbols=hard_symbols,
            final_alpha=alpha[n].copy(),
            final_beta=beta[0].copy(),
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _normalize_init(init: np.ndarray | None) -> np.ndarray:
        if init is None:
            return np.zeros(NUM_STATES, dtype=np.float64)
        arr = np.asarray(init, dtype=np.float64)
        if arr.shape != (NUM_STATES,):
            raise DecodingError(f"state-metric init must have shape ({NUM_STATES},)")
        return arr - arr.max()

    def _scatter_logsumexp(self, indices: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Group ``values`` by destination state and reduce with log-sum-exp."""
        result = np.full(NUM_STATES, _NEG_INF)
        for state in range(NUM_STATES):
            group = values[indices == state]
            if group.size:
                peak = group.max()
                result[state] = peak + np.log(np.exp(group - peak).sum())
        return result

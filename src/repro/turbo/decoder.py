"""Iterative turbo decoding of the WiMAX CTC.

The decoder alternates two SISO activations per iteration — constituent code 1
in natural order, constituent code 2 in interleaved order — exchanging
symbol-level (or, optionally, bit-level as on the paper's NoC) extrinsic
information through the CTC interleaver.  Circular-trellis state metrics are
inherited across iterations, which is the standard approach for CRSC codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DecodingError
from repro.turbo.bcjr import BCJRDecoder
from repro.turbo.bits import bit_to_symbol_extrinsic, symbol_to_bit_extrinsic
from repro.turbo.encoder import TurboEncoder
from repro.turbo.trellis import DuoBinaryTrellis


@dataclass
class TurboDecoderResult:
    """Outcome of one turbo frame decode."""

    hard_bits: np.ndarray
    hard_symbols: np.ndarray
    iterations: int
    converged: bool
    #: Per-iteration count of symbol decisions that changed vs the previous iteration.
    decision_changes: list[int] = field(default_factory=list)


class TurboDecoder:
    """Iterative duo-binary turbo decoder matched to :class:`TurboEncoder`.

    Parameters
    ----------
    encoder:
        The encoder whose frames are being decoded (provides block size,
        interleaver and rate).
    max_iterations:
        Number of full iterations (two SISO activations each); the paper uses 8.
    algorithm:
        ``"max-log"`` (paper's choice) or ``"log-map"``.
    extrinsic_scale:
        Scaling factor ``sigma`` applied to the extrinsic information.
    bit_level_exchange:
        When true, extrinsic information is collapsed to bit level and rebuilt
        at the receiving SISO, mimicking the BTS/STB path used on the NoC
        (paper Section IV-B, ~0.2 dB loss).
    early_termination:
        Stop when hard symbol decisions are identical in two successive
        iterations.
    """

    def __init__(
        self,
        encoder: TurboEncoder,
        max_iterations: int = 8,
        algorithm: str = "max-log",
        extrinsic_scale: float = 0.75,
        bit_level_exchange: bool = False,
        early_termination: bool = True,
    ):
        if max_iterations <= 0:
            raise DecodingError(f"max_iterations must be positive, got {max_iterations}")
        self.encoder = encoder
        self.max_iterations = int(max_iterations)
        self.bit_level_exchange = bool(bit_level_exchange)
        self.early_termination = bool(early_termination)
        trellis = DuoBinaryTrellis()
        self._siso1 = BCJRDecoder(trellis, algorithm=algorithm, extrinsic_scale=extrinsic_scale)
        self._siso2 = BCJRDecoder(trellis, algorithm=algorithm, extrinsic_scale=extrinsic_scale)
        self._interleaver = encoder.interleaver
        self._n_couples = encoder.n_couples

    # ------------------------------------------------------------------ #
    # Interleaving of symbol-level quantities
    # ------------------------------------------------------------------ #
    def _interleave_vectors(self, values: np.ndarray) -> np.ndarray:
        """Reorder per-couple 4-vectors from natural to interleaved order.

        The intra-couple swap of step 1 exchanges the roles of bits A and B,
        which at symbol level exchanges elements 1 (A=0,B=1) and 2 (A=1,B=0).
        """
        perm = self._interleaver.permutation()
        flags = self._interleaver.swap_flags().astype(bool)
        reordered = values[perm].copy()
        swapped_positions = flags[perm]
        reordered[swapped_positions] = reordered[swapped_positions][:, [0, 2, 1, 3]]
        return reordered

    def _deinterleave_vectors(self, values: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`_interleave_vectors`."""
        perm = self._interleaver.permutation()
        flags = self._interleaver.swap_flags().astype(bool)
        natural = np.empty_like(values)
        natural[perm] = values
        natural[flags] = natural[flags][:, [0, 2, 1, 3]]
        return natural

    def _interleave_pairs(self, values: np.ndarray) -> np.ndarray:
        """Reorder per-couple (A, B) pairs from natural to interleaved order."""
        perm = self._interleaver.permutation()
        flags = self._interleaver.swap_flags().astype(bool)
        reordered = values[perm].copy()
        swapped_positions = flags[perm]
        reordered[swapped_positions] = reordered[swapped_positions][:, ::-1]
        return reordered

    def _maybe_bit_level(self, extrinsic: np.ndarray) -> np.ndarray:
        """Apply the STB -> network -> BTS round trip when bit-level exchange is on."""
        if not self.bit_level_exchange:
            return extrinsic
        return bit_to_symbol_extrinsic(symbol_to_bit_extrinsic(extrinsic))

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def decode(
        self,
        systematic_llrs: np.ndarray,
        parity1_llrs: np.ndarray,
        parity2_llrs: np.ndarray,
    ) -> TurboDecoderResult:
        """Decode one frame.

        Parameters
        ----------
        systematic_llrs:
            ``(n_couples, 2)`` LLRs of (A, B) in natural order.
        parity1_llrs:
            ``(n_couples, 2)`` LLRs of (Y1, W1) in natural order (0 for punctured W).
        parity2_llrs:
            ``(n_couples, 2)`` LLRs of (Y2, W2) in interleaved order.
        """
        sys_llrs = np.asarray(systematic_llrs, dtype=np.float64)
        par1 = np.asarray(parity1_llrs, dtype=np.float64)
        par2 = np.asarray(parity2_llrs, dtype=np.float64)
        expected = (self._n_couples, 2)
        for name, arr in (("systematic", sys_llrs), ("parity1", par1), ("parity2", par2)):
            if arr.shape != expected:
                raise DecodingError(f"{name} LLRs must have shape {expected}, got {arr.shape}")

        sys_interleaved = self._interleave_pairs(sys_llrs)
        ext_2_to_1 = np.zeros((self._n_couples, 4), dtype=np.float64)
        alpha1 = beta1 = alpha2 = beta2 = None
        previous_decision: np.ndarray | None = None
        decision_changes: list[int] = []
        converged = False
        iterations_done = 0
        hard_symbols = np.zeros(self._n_couples, dtype=np.int64)

        for iteration in range(self.max_iterations):
            result1 = self._siso1.decode(
                sys_llrs, par1, apriori=ext_2_to_1, initial_alpha=alpha1, initial_beta=beta1
            )
            alpha1, beta1 = result1.final_alpha, result1.final_beta
            ext_1_to_2 = self._interleave_vectors(self._maybe_bit_level(result1.extrinsic))

            result2 = self._siso2.decode(
                sys_interleaved,
                par2,
                apriori=ext_1_to_2,
                initial_alpha=alpha2,
                initial_beta=beta2,
            )
            alpha2, beta2 = result2.final_alpha, result2.final_beta
            ext_2_to_1 = self._deinterleave_vectors(self._maybe_bit_level(result2.extrinsic))

            aposteriori_natural = self._deinterleave_vectors(result2.aposteriori)
            hard_symbols = np.argmax(aposteriori_natural, axis=1).astype(np.int64)
            iterations_done = iteration + 1
            if previous_decision is not None:
                changes = int(np.count_nonzero(hard_symbols != previous_decision))
                decision_changes.append(changes)
                if changes == 0:
                    converged = True
                    if self.early_termination:
                        break
            previous_decision = hard_symbols.copy()

        hard_bits = TurboEncoder.symbols_to_bits(hard_symbols)
        return TurboDecoderResult(
            hard_bits=hard_bits,
            hard_symbols=hard_symbols,
            iterations=iterations_done,
            converged=converged,
            decision_changes=decision_changes,
        )

    # ------------------------------------------------------------------ #
    # Convenience: LLR plumbing from a transmitted codeword
    # ------------------------------------------------------------------ #
    def split_llrs(self, llrs: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split a flat LLR array (as produced for :meth:`TurboCodeword.to_bit_array`).

        Returns ``(systematic, parity1, parity2)`` shaped ``(n_couples, 2)``;
        punctured W positions receive LLR 0.
        """
        arr = np.asarray(llrs, dtype=np.float64)
        n = self._n_couples
        if self.encoder.rate == "1/2":
            expected_len = 4 * n
        else:
            expected_len = 6 * n
        if arr.shape != (expected_len,):
            raise DecodingError(
                f"expected {expected_len} LLRs for rate {self.encoder.rate}, got {arr.shape}"
            )
        systematic = arr[: 2 * n].reshape(n, 2)
        parity1 = np.zeros((n, 2), dtype=np.float64)
        parity2 = np.zeros((n, 2), dtype=np.float64)
        if self.encoder.rate == "1/2":
            parity1[:, 0] = arr[2 * n : 3 * n]
            parity2[:, 0] = arr[3 * n : 4 * n]
        else:
            parity1[:] = arr[2 * n : 4 * n].reshape(n, 2)
            parity2[:] = arr[4 * n : 6 * n].reshape(n, 2)
        return systematic, parity1, parity2

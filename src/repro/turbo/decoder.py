"""Iterative turbo decoding of the WiMAX CTC.

The decoder alternates two SISO activations per iteration — constituent code 1
in natural order, constituent code 2 in interleaved order — exchanging
symbol-level (or, optionally, bit-level as on the paper's NoC) extrinsic
information through the CTC interleaver.  Circular-trellis state metrics are
inherited across iterations, which is the standard approach for CRSC codes.

Since the batched turbo engine landed, this module is a thin per-frame
facade: the iterative exchange itself lives in
:class:`repro.sim.turbo_batch.BatchTurboDecoder` and :meth:`TurboDecoder.decode`
runs it with ``batch=1``.  Decoding many frames?  Use the batch decoder (or
:class:`repro.sim.runner.BerRunner`) directly — stacking frames on the batch
axis returns bit-identical results at a fraction of the per-frame cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import DecodingError
from repro.turbo.encoder import TurboEncoder

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle with repro.sim
    from repro.sim.turbo_batch import BatchTurboDecoder


@dataclass
class TurboDecoderResult:
    """Outcome of one turbo frame decode."""

    hard_bits: np.ndarray
    hard_symbols: np.ndarray
    iterations: int
    converged: bool
    #: Per-iteration count of symbol decisions that changed vs the previous iteration.
    decision_changes: list[int] = field(default_factory=list)


class TurboDecoder:
    """Iterative duo-binary turbo decoder matched to :class:`TurboEncoder`.

    All message passing delegates to
    :class:`repro.sim.turbo_batch.BatchTurboDecoder` with ``batch=1``, so
    this class and the batch engine agree bit-for-bit by construction.

    Parameters
    ----------
    encoder:
        The encoder whose frames are being decoded (provides block size,
        interleaver and rate).
    max_iterations:
        Number of full iterations (two SISO activations each); the paper uses 8.
    algorithm:
        ``"max-log"`` (paper's choice) or ``"log-map"``.
    extrinsic_scale:
        Scaling factor ``sigma`` applied to the extrinsic information.
    bit_level_exchange:
        When true, extrinsic information is collapsed to bit level and rebuilt
        at the receiving SISO, mimicking the BTS/STB path used on the NoC
        (paper Section IV-B, ~0.2 dB loss).
    early_termination:
        Stop when hard symbol decisions are identical in two successive
        iterations.
    """

    def __init__(
        self,
        encoder: TurboEncoder,
        max_iterations: int = 8,
        algorithm: str = "max-log",
        extrinsic_scale: float = 0.75,
        bit_level_exchange: bool = False,
        early_termination: bool = True,
    ):
        # Imported lazily: repro.sim.turbo_batch itself imports repro.turbo.
        from repro.sim.turbo_batch import BatchTurboDecoder

        self._batch: "BatchTurboDecoder" = BatchTurboDecoder(
            encoder,
            max_iterations=max_iterations,
            algorithm=algorithm,
            extrinsic_scale=extrinsic_scale,
            bit_level_exchange=bit_level_exchange,
            early_termination=early_termination,
        )
        self.encoder = encoder

    # The tunables live on the inner batch decoder (which reads them on every
    # decode), so mutating them after construction keeps working.
    @property
    def max_iterations(self) -> int:
        """Maximum number of full turbo iterations per frame."""
        return self._batch.max_iterations

    @max_iterations.setter
    def max_iterations(self, value: int) -> None:
        if int(value) <= 0:
            raise DecodingError(f"max_iterations must be positive, got {value}")
        self._batch.max_iterations = int(value)

    @property
    def bit_level_exchange(self) -> bool:
        """Exchange bit-level (BTS/STB) instead of symbol-level extrinsics."""
        return self._batch.bit_level_exchange

    @bit_level_exchange.setter
    def bit_level_exchange(self, value: bool) -> None:
        self._batch.bit_level_exchange = bool(value)

    @property
    def early_termination(self) -> bool:
        """Stop a frame once its hard decisions repeat across iterations."""
        return self._batch.early_termination

    @early_termination.setter
    def early_termination(self, value: bool) -> None:
        self._batch.early_termination = bool(value)

    @property
    def algorithm(self) -> str:
        """``"max-log"`` or ``"log-map"``."""
        return self._batch.algorithm

    @property
    def extrinsic_scale(self) -> float:
        """Scaling factor applied to the extrinsic information."""
        return self._batch.extrinsic_scale

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def decode(
        self,
        systematic_llrs: np.ndarray,
        parity1_llrs: np.ndarray,
        parity2_llrs: np.ndarray,
    ) -> TurboDecoderResult:
        """Decode one frame.

        Parameters
        ----------
        systematic_llrs:
            ``(n_couples, 2)`` LLRs of (A, B) in natural order.
        parity1_llrs:
            ``(n_couples, 2)`` LLRs of (Y1, W1) in natural order (0 for punctured W).
        parity2_llrs:
            ``(n_couples, 2)`` LLRs of (Y2, W2) in interleaved order.
        """
        sys_llrs = np.asarray(systematic_llrs, dtype=np.float64)
        par1 = np.asarray(parity1_llrs, dtype=np.float64)
        par2 = np.asarray(parity2_llrs, dtype=np.float64)
        expected = (self.encoder.n_couples, 2)
        for name, arr in (("systematic", sys_llrs), ("parity1", par1), ("parity2", par2)):
            if arr.shape != expected:
                raise DecodingError(f"{name} LLRs must have shape {expected}, got {arr.shape}")
        result = self._batch.decode_split(
            sys_llrs[None, :, :], par1[None, :, :], par2[None, :, :]
        )
        return TurboDecoderResult(
            hard_bits=result.hard_bits[0],
            hard_symbols=result.hard_symbols[0],
            iterations=int(result.iterations[0]),
            converged=bool(result.converged[0]),
            decision_changes=list(result.decision_changes[0]),
        )

    # ------------------------------------------------------------------ #
    # Convenience: LLR plumbing from a transmitted codeword
    # ------------------------------------------------------------------ #
    def split_llrs(self, llrs: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split a flat LLR array (as produced for :meth:`TurboCodeword.to_bit_array`).

        Returns ``(systematic, parity1, parity2)`` shaped ``(n_couples, 2)``;
        punctured W positions receive LLR 0.
        """
        arr = np.asarray(llrs, dtype=np.float64)
        if arr.ndim != 1:
            raise DecodingError(f"expected a flat LLR array, got shape {arr.shape}")
        systematic, parity1, parity2 = self._batch.split_llrs_batch(arr[None, :])
        return systematic[0], parity1[0], parity2[0]

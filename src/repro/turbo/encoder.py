"""WiMAX CTC turbo encoding.

The encoder feeds the natural-order couple sequence to constituent encoder 1
and the interleaved sequence to constituent encoder 2, both operated as
*circular* (tail-biting) codes, then maps the systematic couple ``(A, B)``
and the two parity couples ``(Y1, W1)`` / ``(Y2, W2)`` to the transmitted
sub-blocks.  Rate 1/2 — the rate used throughout the paper — keeps only the
``Y`` parities; rate 1/3 keeps ``Y`` and ``W``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CodeDefinitionError
from repro.turbo.ctc_interleaver import CTCInterleaver
from repro.turbo.trellis import DuoBinaryTrellis


@dataclass(frozen=True)
class TurboCodeword:
    """Encoded frame, kept in per-stream form for easy LLR bookkeeping.

    Attributes
    ----------
    systematic:
        ``(n_couples, 2)`` systematic bits ``(A, B)`` in natural order.
    parity1 / parity2:
        ``(n_couples, 2)`` parity couples of encoder 1 (natural order) and
        encoder 2 (interleaved order).
    rate:
        Nominal code rate ("1/2" or "1/3").
    """

    systematic: np.ndarray
    parity1: np.ndarray
    parity2: np.ndarray
    rate: str

    @property
    def n_couples(self) -> int:
        """Number of information couples."""
        return self.systematic.shape[0]

    @property
    def n_info_bits(self) -> int:
        """Number of information bits (2 per couple)."""
        return 2 * self.n_couples

    @property
    def n_coded_bits(self) -> int:
        """Number of transmitted coded bits."""
        parity_bits_per_couple = 2 if self.rate == "1/2" else 4
        return self.n_couples * (2 + parity_bits_per_couple)

    def to_bit_array(self) -> np.ndarray:
        """Serialise to a flat bit array: systematic, then parity1, then parity2.

        For rate 1/2 only the ``Y`` bit of each parity couple is kept.
        """
        streams = [self.systematic.reshape(-1)]
        if self.rate == "1/2":
            streams.append(self.parity1[:, 0])
            streams.append(self.parity2[:, 0])
        else:
            streams.append(self.parity1.reshape(-1))
            streams.append(self.parity2.reshape(-1))
        return np.concatenate(streams).astype(np.int8)


class TurboEncoder:
    """Circular duo-binary turbo encoder for the WiMAX CTC.

    Parameters
    ----------
    n_couples:
        Block size in couples; must be one of the standard CTC sizes.
    rate:
        "1/2" (default, the paper's working point) or "1/3" (mother code).
    """

    SUPPORTED_RATES = ("1/2", "1/3")

    def __init__(self, n_couples: int = 2400, rate: str = "1/2"):
        if rate not in self.SUPPORTED_RATES:
            raise CodeDefinitionError(
                f"unsupported CTC rate {rate!r}; supported: {self.SUPPORTED_RATES}"
            )
        self.rate = rate
        self.interleaver = CTCInterleaver.for_block_size(n_couples)
        self.trellis = DuoBinaryTrellis()
        self.n_couples = n_couples

    @property
    def k(self) -> int:
        """Number of information bits per frame."""
        return 2 * self.n_couples

    @property
    def n(self) -> int:
        """Number of coded bits per frame."""
        return self.k * (2 if self.rate == "1/2" else 3)

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    @staticmethod
    def bits_to_symbols(bits: np.ndarray) -> np.ndarray:
        """Pack a flat bit array (A0 B0 A1 B1 ...) into couple symbols ``2A + B``."""
        arr = np.asarray(bits, dtype=np.int64)
        if arr.ndim != 1 or arr.size % 2 != 0:
            raise CodeDefinitionError("bit array must be one-dimensional with even length")
        pairs = arr.reshape(-1, 2)
        return 2 * pairs[:, 0] + pairs[:, 1]

    @staticmethod
    def symbols_to_bits(symbols: np.ndarray) -> np.ndarray:
        """Unpack couple symbols back to a flat bit array."""
        arr = np.asarray(symbols, dtype=np.int64)
        bits = np.empty((arr.size, 2), dtype=np.int8)
        bits[:, 0] = (arr >> 1) & 1
        bits[:, 1] = arr & 1
        return bits.reshape(-1)

    def _encode_constituent(self, symbols: np.ndarray) -> np.ndarray:
        """Run one circular constituent encoder; return ``(n_couples, 2)`` parity."""
        start_state = self.trellis.circulation_state(symbols)
        parity = np.zeros((symbols.size, 2), dtype=np.int8)
        state = start_state
        for idx, symbol in enumerate(symbols):
            parity[idx, 0], parity[idx, 1] = self.trellis.parity(state, int(symbol))
            state = self.trellis.next_state(state, int(symbol))
        if state != start_state:
            raise CodeDefinitionError(
                "circular encoding did not return to the circulation state"
            )
        return parity

    def encode(self, info_bits: np.ndarray) -> TurboCodeword:
        """Encode ``2 * n_couples`` information bits."""
        bits = np.asarray(info_bits, dtype=np.int64)
        if bits.shape != (self.k,):
            raise CodeDefinitionError(
                f"expected {self.k} information bits, got shape {bits.shape}"
            )
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise CodeDefinitionError("information bits must be 0/1 values")
        symbols = self.bits_to_symbols(bits)
        parity1 = self._encode_constituent(symbols)
        interleaved = self.interleaver.interleave_symbols(symbols)
        parity2 = self._encode_constituent(interleaved)
        systematic = np.empty((self.n_couples, 2), dtype=np.int8)
        systematic[:, 0] = (symbols >> 1) & 1
        systematic[:, 1] = symbols & 1
        return TurboCodeword(
            systematic=systematic, parity1=parity1, parity2=parity2, rate=self.rate
        )

    # ------------------------------------------------------------------ #
    # Batched encoding
    # ------------------------------------------------------------------ #
    def _encode_constituent_batch(self, symbols: np.ndarray) -> np.ndarray:
        """Run one circular constituent encoder over ``(batch, n_couples)`` symbols.

        The state recursion is sequential over couples by construction, but
        every step advances the whole batch at once through the flat trellis
        tables; returns ``(batch, n_couples, 2)`` parity bits.
        """
        start_state = self.trellis.circulation_states(symbols)
        next_table = self.trellis.next_state_table()
        parity_table = self.trellis.parity_table()
        parity = np.empty((*symbols.shape, 2), dtype=np.int8)
        state = start_state.copy()
        for idx in range(symbols.shape[1]):
            step_symbols = symbols[:, idx]
            parity[:, idx] = parity_table[state, step_symbols]
            state = next_table[state, step_symbols]
        if np.any(state != start_state):
            raise CodeDefinitionError(
                "circular encoding did not return to the circulation state"
            )
        return parity

    def encode_batch(self, info_bits: np.ndarray) -> np.ndarray:
        """Encode ``(batch, k)`` information bits into ``(batch, n)`` codewords.

        The output rows follow the :meth:`TurboCodeword.to_bit_array` layout
        (systematic bits, then the kept parity1 bits, then parity2), which is
        what :class:`repro.sim.runner.BerRunner` transmits; a test pins this
        against looped per-frame :meth:`encode` calls.
        """
        bits = np.asarray(info_bits, dtype=np.int64)
        if bits.ndim != 2 or bits.shape[1] != self.k:
            raise CodeDefinitionError(
                f"expected a (batch, {self.k}) information-bit array, got shape {bits.shape}"
            )
        if bits.size and (bits.min() < 0 or bits.max() > 1):
            raise CodeDefinitionError("information bits must be 0/1 values")
        batch = bits.shape[0]
        symbols = 2 * bits[:, 0::2] + bits[:, 1::2]  # (batch, n_couples)
        parity1 = self._encode_constituent_batch(symbols)
        parity2 = self._encode_constituent_batch(
            self.interleaver.interleave_symbols(symbols)
        )
        n_couples = self.n_couples
        out = np.empty((batch, self.n), dtype=np.int8)
        out[:, : 2 * n_couples] = bits
        if self.rate == "1/2":
            out[:, 2 * n_couples : 3 * n_couples] = parity1[:, :, 0]
            out[:, 3 * n_couples :] = parity2[:, :, 0]
        else:
            out[:, 2 * n_couples : 4 * n_couples] = parity1.reshape(batch, -1)
            out[:, 4 * n_couples :] = parity2.reshape(batch, -1)
        return out

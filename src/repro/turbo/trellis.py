"""The 8-state double-binary CRSC trellis used by the WiMAX CTC.

The constituent encoder follows the DVB-RCS / IEEE 802.16e circuit: three
memory cells ``(s1, s2, s3)``, feedback polynomial ``1 + D + D^3``, parity
outputs ``Y`` (``1 + D^2 + D^3``) and ``W`` (``1 + D^3``), with the second
input bit ``B`` additionally injected into the second and third memory cells.

Every trellis step consumes one *couple* ``(A, B)`` — equivalently a symbol
``u = 2A + B`` in ``{0, 1, 2, 3}`` — and produces the parity couple
``(Y, W)``.  The circular (tail-biting) state is computed from the affine
state-update map, as required for CRSC encoding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CodeDefinitionError

#: Number of trellis states (three memory cells).
NUM_STATES = 8

#: Number of input symbols per trellis step (duo-binary: 2 bits).
NUM_SYMBOLS = 4


@dataclass(frozen=True)
class TrellisTransition:
    """One edge of the trellis section.

    Attributes
    ----------
    from_state / to_state:
        Encoder states before and after consuming the input symbol.
    symbol:
        Input symbol ``u = 2A + B``.
    systematic:
        The systematic couple ``(A, B)``.
    parity:
        The parity couple ``(Y, W)``.
    """

    from_state: int
    to_state: int
    symbol: int
    systematic: tuple[int, int]
    parity: tuple[int, int]


def _state_bits(state: int) -> tuple[int, int, int]:
    return (state >> 2) & 1, (state >> 1) & 1, state & 1


def _bits_state(s1: int, s2: int, s3: int) -> int:
    return (s1 << 2) | (s2 << 1) | s3


def _step(state: int, a: int, b: int) -> tuple[int, int, int]:
    """Advance the constituent encoder by one couple; return (next_state, y, w)."""
    s1, s2, s3 = _state_bits(state)
    feedback = a ^ b ^ s1 ^ s3
    new_s1 = feedback
    new_s2 = s1 ^ b
    new_s3 = s2 ^ b
    y = feedback ^ s2 ^ s3
    w = feedback ^ s3
    return _bits_state(new_s1, new_s2, new_s3), y, w


class DuoBinaryTrellis:
    """Precomputed trellis section of the WiMAX CTC constituent code.

    The same section applies to every step (the code is time-invariant), so a
    single table of ``8 x 4`` transitions describes the whole trellis.
    """

    def __init__(self) -> None:
        transitions: list[TrellisTransition] = []
        next_state = np.zeros((NUM_STATES, NUM_SYMBOLS), dtype=np.int64)
        parity_bits = np.zeros((NUM_STATES, NUM_SYMBOLS, 2), dtype=np.int8)
        for state in range(NUM_STATES):
            for symbol in range(NUM_SYMBOLS):
                a, b = (symbol >> 1) & 1, symbol & 1
                to_state, y, w = _step(state, a, b)
                next_state[state, symbol] = to_state
                parity_bits[state, symbol, 0] = y
                parity_bits[state, symbol, 1] = w
                transitions.append(
                    TrellisTransition(
                        from_state=state,
                        to_state=to_state,
                        symbol=symbol,
                        systematic=(a, b),
                        parity=(y, w),
                    )
                )
        self._transitions = tuple(transitions)
        self._next_state = next_state
        self._parity = parity_bits
        # Incoming edges per destination state, in flat (state, symbol) scan
        # order: the recursive code gives every state exactly four of them.
        in_state = np.zeros((NUM_STATES, NUM_SYMBOLS), dtype=np.int64)
        in_symbol = np.zeros((NUM_STATES, NUM_SYMBOLS), dtype=np.int64)
        fill = [0] * NUM_STATES
        for state in range(NUM_STATES):
            for symbol in range(NUM_SYMBOLS):
                target = int(next_state[state, symbol])
                in_state[target, fill[target]] = state
                in_symbol[target, fill[target]] = symbol
                fill[target] += 1
        self._in_state = in_state
        self._in_symbol = in_symbol
        # The state-update map is affine over GF(2)^3: s' = A s + B u.
        self._state_matrix = self._compute_state_matrix()
        self._circulation_inverse_cache: dict[int, np.ndarray | None] = {}

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    @property
    def num_states(self) -> int:
        """Number of trellis states."""
        return NUM_STATES

    @property
    def num_symbols(self) -> int:
        """Number of distinct input symbols per step."""
        return NUM_SYMBOLS

    @property
    def transitions(self) -> tuple[TrellisTransition, ...]:
        """All ``8 x 4`` transitions of one trellis section."""
        return self._transitions

    def next_state(self, state: int, symbol: int) -> int:
        """State reached from ``state`` on input ``symbol``."""
        return int(self._next_state[state, symbol])

    def parity(self, state: int, symbol: int) -> tuple[int, int]:
        """Parity couple ``(Y, W)`` emitted from ``state`` on input ``symbol``."""
        return int(self._parity[state, symbol, 0]), int(self._parity[state, symbol, 1])

    def next_state_table(self) -> np.ndarray:
        """The full ``(8, 4)`` next-state table (copy)."""
        return self._next_state.copy()

    def parity_table(self) -> np.ndarray:
        """The full ``(8, 4, 2)`` parity table (copy)."""
        return self._parity.copy()

    def incoming_table(self) -> tuple[np.ndarray, np.ndarray]:
        """Flat incoming-edge tables for the batched forward recursion.

        Returns ``(in_state, in_symbol)``, each of shape ``(8, 4)``: entry
        ``[t, i]`` is the source state / input symbol of the ``i``-th edge
        arriving at state ``t``, in flat ``(state, symbol)`` scan order —
        the same order the scatter in the sequential recursion visits, which
        is what keeps the batched Log-MAP bit-identical.
        """
        return self._in_state.copy(), self._in_symbol.copy()

    # ------------------------------------------------------------------ #
    # Circular (tail-biting) state computation
    # ------------------------------------------------------------------ #
    def _compute_state_matrix(self) -> np.ndarray:
        """GF(2) matrix A of the homogeneous state update (input symbol 0)."""
        matrix = np.zeros((3, 3), dtype=np.uint8)
        for bit in range(3):
            state = 1 << (2 - bit)  # state with only this bit set
            next_state, _, _ = _step(state, 0, 0)
            s1, s2, s3 = _state_bits(next_state)
            matrix[0, bit] = s1
            matrix[1, bit] = s2
            matrix[2, bit] = s3
        return matrix

    def zero_input_final_state(self, start_state: int, n_steps: int, symbols: np.ndarray) -> int:
        """Encode ``symbols`` starting from ``start_state`` and return the final state."""
        state = int(start_state)
        for symbol in np.asarray(symbols, dtype=np.int64):
            state = int(self._next_state[state, int(symbol)])
        return state

    def circulation_state(self, symbols: np.ndarray) -> int:
        """Compute the circular-trellis initial state for a block of symbols.

        For a CRSC code the final state reached from state ``s`` is
        ``A^N s + c`` where ``c`` is the final state reached from zero.  The
        circulation state is the fixed point ``s_c = (I + A^N)^{-1} c``
        (arithmetic over GF(2)).  Raises when ``I + A^N`` is singular, which
        happens only when ``N`` is a multiple of the state-matrix period (7);
        WiMAX block sizes avoid this.
        """
        symbols_arr = np.asarray(symbols, dtype=np.int64)
        n_steps = symbols_arr.size
        if n_steps == 0:
            raise CodeDefinitionError("cannot compute a circulation state for an empty block")
        final_from_zero = self.zero_input_final_state(0, n_steps, symbols_arr)
        c_vec = np.array(_state_bits(final_from_zero), dtype=np.uint8)
        m_inv = self._circulation_inverse(n_steps)
        s_c = (m_inv @ c_vec) % 2
        return _bits_state(int(s_c[0]), int(s_c[1]), int(s_c[2]))

    def circulation_states(self, symbols: np.ndarray) -> np.ndarray:
        """Batched :meth:`circulation_state` over ``(batch, n_steps)`` blocks.

        All frames share one block length, so ``(I + A^N)^{-1}`` is computed
        once and applied to every frame's zero-start final state at once.
        """
        arr = np.asarray(symbols, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] == 0:
            raise CodeDefinitionError(
                f"expected a (batch, n_steps) symbol array with n_steps > 0, got shape {arr.shape}"
            )
        state = np.zeros(arr.shape[0], dtype=np.int64)
        for step in range(arr.shape[1]):
            state = self._next_state[state, arr[:, step]]
        c_bits = np.stack(
            [(state >> 2) & 1, (state >> 1) & 1, state & 1], axis=1
        ).astype(np.uint8)
        m_inv = self._circulation_inverse(arr.shape[1])
        s_c = (c_bits @ m_inv.T) % 2
        return (
            (s_c[:, 0].astype(np.int64) << 2)
            | (s_c[:, 1].astype(np.int64) << 1)
            | s_c[:, 2].astype(np.int64)
        )

    def _circulation_inverse(self, n_steps: int) -> np.ndarray:
        """``(I + A^n_steps)^{-1}`` over GF(2), cached per block length."""
        if n_steps not in self._circulation_inverse_cache:
            a_pow = np.eye(3, dtype=np.uint8)
            power = self._state_matrix.copy()
            exponent = n_steps
            while exponent:
                if exponent & 1:
                    a_pow = (a_pow @ power) % 2
                power = (power @ power) % 2
                exponent >>= 1
            m = (np.eye(3, dtype=np.uint8) + a_pow) % 2
            self._circulation_inverse_cache[n_steps] = _gf2_invert_3x3(m)
        m_inv = self._circulation_inverse_cache[n_steps]
        if m_inv is None:
            raise CodeDefinitionError(
                f"block length {n_steps} is a multiple of the trellis period; "
                "no circulation state exists"
            )
        return m_inv


def _gf2_invert_3x3(matrix: np.ndarray) -> np.ndarray | None:
    """Invert a 3x3 GF(2) matrix; return ``None`` if singular."""
    work = matrix.astype(np.uint8).copy()
    inverse = np.eye(3, dtype=np.uint8)
    for col in range(3):
        pivot_rows = np.flatnonzero(work[col:, col]) + col
        if pivot_rows.size == 0:
            return None
        pivot = int(pivot_rows[0])
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
            inverse[[col, pivot]] = inverse[[pivot, col]]
        for row in range(3):
            if row != col and work[row, col]:
                work[row] ^= work[col]
                inverse[row] ^= inverse[col]
    return inverse

"""Turbo substrate: WiMAX double-binary convolutional turbo code (CTC).

The WiMAX CTC concatenates two 8-state double-binary circular recursive
systematic convolutional (CRSC) constituent encoders through the standard's
almost-regular permutation.  This package provides:

* :class:`~repro.turbo.trellis.DuoBinaryTrellis` — the 8-state duo-binary
  trellis (states, transitions, output labels),
* :class:`~repro.turbo.ctc_interleaver.CTCInterleaver` — the two-step WiMAX
  CTC interleaver,
* :class:`~repro.turbo.encoder.TurboEncoder` — circular encoding and rate-1/2
  puncturing,
* :class:`~repro.turbo.bcjr.BCJRDecoder` — Log-MAP / Max-Log-MAP symbol-level
  BCJR (paper eqs. (1)-(5)),
* :class:`~repro.turbo.decoder.TurboDecoder` — the iterative exchange of
  extrinsic information between the two SISOs,
* :mod:`~repro.turbo.bits` — bit-level <-> symbol-level extrinsic conversion
  (the BTS/STB units of paper Fig. 3).

The per-frame decoders delegate to the batched turbo engine in
:mod:`repro.sim.turbo_batch` with ``batch=1``; for Monte-Carlo BER work use
:class:`repro.sim.turbo_batch.BatchTurboDecoder` through
:class:`repro.sim.runner.BerRunner`.
"""

from repro.turbo.trellis import DuoBinaryTrellis, TrellisTransition
from repro.turbo.ctc_interleaver import (
    CTC_INTERLEAVER_PARAMETERS,
    CTCInterleaver,
    supported_ctc_block_sizes,
)
from repro.turbo.encoder import TurboEncoder, TurboCodeword
from repro.turbo.bcjr import BCJRDecoder, BCJRResult
from repro.turbo.decoder import TurboDecoder, TurboDecoderResult
from repro.turbo.bits import symbol_to_bit_extrinsic, bit_to_symbol_extrinsic

__all__ = [
    "DuoBinaryTrellis",
    "TrellisTransition",
    "CTC_INTERLEAVER_PARAMETERS",
    "CTCInterleaver",
    "supported_ctc_block_sizes",
    "TurboEncoder",
    "TurboCodeword",
    "BCJRDecoder",
    "BCJRResult",
    "TurboDecoder",
    "TurboDecoderResult",
    "symbol_to_bit_extrinsic",
    "bit_to_symbol_extrinsic",
]

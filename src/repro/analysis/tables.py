"""Builders that render reproduced results in the layout of the paper's tables."""

from __future__ import annotations

from dataclasses import dataclass

from typing import Sequence

from repro.analysis.reference import PAPER_TABLE1, PAPER_TABLE2, PAPER_TABLE3, Table1Cell
from repro.core.architecture import LdpcEvaluation, TurboEvaluation
from repro.core.design_flow import DesignPoint
from repro.hw.technology import scale_area
from repro.sim.runner import BerPoint
from repro.utils.tables import Table, format_ratio_cell


def _paper_cell(topology: str, degree: int, parallelism: int, routing: str) -> Table1Cell | None:
    for cell in PAPER_TABLE1:
        if (
            cell.topology == topology
            and cell.degree == degree
            and cell.parallelism == parallelism
            and cell.routing == routing
        ):
            return cell
    return None


def build_table1(points: list[DesignPoint]) -> Table:
    """Render a sweep in the layout of paper Table I, with the paper's cells alongside.

    Rows are (topology, degree, routing); columns are the parallelism degrees.
    Each cell shows ``measured T/A`` and, when available, ``paper T/A``.
    """
    parallelisms = sorted({p.parallelism for p in points})
    table = Table(
        title="Table I - throughput [Mb/s] / NoC area [mm^2], WiMAX LDPC n=2304 r=1/2",
        columns=["topology (D)", "routing", *[f"P={p}" for p in parallelisms]],
    )
    groups = sorted({(p.topology_family, p.degree, p.routing_algorithm.value) for p in points})
    for family, degree, routing in groups:
        cells: list[str] = [f"{family} (D={degree})", routing]
        for parallelism in parallelisms:
            match = [
                p
                for p in points
                if p.topology_family == family
                and p.degree == degree
                and p.routing_algorithm.value == routing
                and p.parallelism == parallelism
            ]
            if not match:
                cells.append("-")
                continue
            point = match[0]
            text = format_ratio_cell(point.throughput_mbps, point.noc_area_mm2)
            paper = _paper_cell(family, degree, parallelism, routing)
            if paper is not None:
                text += f" (paper {format_ratio_cell(paper.throughput_mbps, paper.noc_area_mm2)})"
            cells.append(text)
        table.add_row(cells)
    return table


def build_ber_table(points: Sequence[BerPoint], title: str = "BER sweep") -> Table:
    """Render a Monte-Carlo BER sweep with its Wilson confidence intervals.

    One row per :class:`~repro.sim.runner.BerPoint`; intervals follow the
    point estimates so a reader can judge whether two curves are actually
    distinguishable at the simulated frame counts.
    """
    table = Table(
        title=title,
        columns=[
            "Eb/N0 [dB]",
            "frames",
            "BER",
            "BER 95% CI",
            "FER",
            "FER 95% CI",
            "avg iters",
        ],
    )
    for point in points:
        ber_lo, ber_hi = point.ber_interval
        fer_lo, fer_hi = point.fer_interval
        table.add_row(
            [
                f"{point.ebn0_db:.2f}",
                str(point.frames),
                f"{point.ber:.3e}",
                f"[{ber_lo:.1e}, {ber_hi:.1e}]",
                f"{point.fer:.3e}",
                f"[{fer_lo:.1e}, {fer_hi:.1e}]",
                f"{point.avg_iterations:.1f}",
            ]
        )
    return table


def build_table2(
    turbo_by_routing: dict[str, TurboEvaluation],
    ldpc_by_routing: dict[str, LdpcEvaluation],
) -> Table:
    """Render paper Table II: the P=22 Kautz D=3 WiMAX design case."""
    table = Table(
        title=(
            "Table II - P=22, D=3 generalized Kautz: throughput [Mb/s] / NoC area [mm^2] "
            "(turbo N=2400 @75 MHz, LDPC n=2304 r=1/2 @300 MHz)"
        ),
        columns=["routing", "turbo (measured)", "turbo (paper)", "LDPC (measured)", "LDPC (paper)"],
    )
    for routing in ("SSP-RR", "SSP-FL", "ASP-FT"):
        row = [routing]
        turbo = turbo_by_routing.get(routing)
        if turbo is None:
            row.append("-")
        else:
            row.append(format_ratio_cell(turbo.throughput_mbps, turbo.area.noc_mm2))
        paper_turbo = PAPER_TABLE2.get(("turbo", routing))
        row.append(format_ratio_cell(*paper_turbo) if paper_turbo else "-")
        ldpc = ldpc_by_routing.get(routing)
        if ldpc is None:
            row.append("-")
        else:
            row.append(format_ratio_cell(ldpc.throughput_mbps, ldpc.area.noc_mm2))
        paper_ldpc = PAPER_TABLE2.get(("LDPC", routing))
        row.append(format_ratio_cell(*paper_ldpc) if paper_ldpc else "-")
        table.add_row(row)
    return table


def build_table3(ldpc: LdpcEvaluation, turbo: TurboEvaluation) -> Table:
    """Render paper Table III: this work's modelled row plus the published competitors."""
    table = Table(
        title="Table III - flexible turbo/LDPC decoder comparison (competitors as published)",
        columns=[
            "decoder",
            "P",
            "tech",
            "Acore [mm^2]",
            "Atot [mm^2]",
            "A@65nm [mm^2]",
            "fclk [MHz]",
            "Pow [mW]",
            "It (L/T)",
            "T LDPC [Mb/s]",
            "T turbo [Mb/s]",
        ],
    )
    area = ldpc.area
    normalized = scale_area(area.total_mm2, 90.0, 65.0)
    table.add_row(
        [
            "This work (reproduction model)",
            "22",
            "90nm",
            f"{area.core_mm2:.2f}",
            f"{area.total_mm2:.2f}",
            f"{normalized:.2f}",
            "300 / 75",
            f"{ldpc.power.total_mw:.0f} / {turbo.power.total_mw:.0f}",
            "10 / 8",
            f"{ldpc.throughput_mbps:.2f} (min.)",
            f"{turbo.throughput_mbps:.2f} (min.)",
        ]
    )
    for row in PAPER_TABLE3:
        iterations = (
            f"{row.max_iterations_ldpc or '-'} / {row.max_iterations_turbo or '-'}"
        )
        table.add_row(
            [
                row.label,
                str(row.parallelism) if row.parallelism is not None else "-",
                f"{row.technology_nm}nm",
                f"{row.core_area_mm2:.2f}" if row.core_area_mm2 is not None else "-",
                f"{row.total_area_mm2:.2f}" if row.total_area_mm2 is not None else "-",
                f"{row.normalized_area_mm2:.2f}"
                if row.normalized_area_mm2 is not None
                else "-",
                f"{row.clock_mhz:.0f}",
                f"{row.power_mw:.0f}" if row.power_mw is not None else "n/a",
                iterations,
                f"{row.ldpc_throughput_mbps:.2f}"
                if row.ldpc_throughput_mbps is not None
                else "-",
                f"{row.turbo_throughput_mbps:.2f}"
                if row.turbo_throughput_mbps is not None
                else "-",
            ]
        )
    return table


@dataclass(frozen=True)
class TrendCheck:
    """One qualitative claim of the paper checked against reproduced data."""

    name: str
    passed: bool
    detail: str


def check_table1_trends(points: list[DesignPoint]) -> list[TrendCheck]:
    """Verify the qualitative claims the paper draws from Table I.

    * generalized Kautz outperforms the other topologies of the same degree,
    * D = 3 improves on D = 2 for the same topology family,
    * throughput does not decrease when P grows (same topology/routing),
    * SSP-FL performs at least comparably to SSP-RR on average.
    """
    checks: list[TrendCheck] = []

    def mean_throughput(predicate) -> float:
        selected = [p.throughput_mbps for p in points if predicate(p)]
        return sum(selected) / len(selected) if selected else 0.0

    kautz3 = mean_throughput(
        lambda p: p.topology_family == "generalized-kautz" and p.degree == 3
    )
    spidergon3 = mean_throughput(lambda p: p.topology_family == "spidergon")
    if kautz3 and spidergon3:
        checks.append(
            TrendCheck(
                name="Kautz D=3 beats spidergon D=3 (mean throughput)",
                passed=kautz3 >= spidergon3 * 0.98,
                detail=f"kautz={kautz3:.1f} Mb/s vs spidergon={spidergon3:.1f} Mb/s",
            )
        )
    kautz2 = mean_throughput(
        lambda p: p.topology_family == "generalized-kautz" and p.degree == 2
    )
    if kautz2 and kautz3:
        checks.append(
            TrendCheck(
                name="D=3 Kautz beats D=2 Kautz (mean throughput)",
                passed=kautz3 > kautz2,
                detail=f"D3={kautz3:.1f} Mb/s vs D2={kautz2:.1f} Mb/s",
            )
        )
    # Throughput grows with P for Kautz D=3 / SSP-FL.
    series = sorted(
        (
            (p.parallelism, p.throughput_mbps)
            for p in points
            if p.topology_family == "generalized-kautz"
            and p.degree == 3
            and p.routing_algorithm.value == "SSP-FL"
        ),
    )
    if len(series) >= 2:
        non_decreasing = all(
            series[i + 1][1] >= series[i][1] * 0.90 for i in range(len(series) - 1)
        )
        checks.append(
            TrendCheck(
                name="throughput grows with P (Kautz D=3, SSP-FL)",
                passed=non_decreasing,
                detail=" -> ".join(f"P={p}:{t:.1f}" for p, t in series),
            )
        )
    ssp_fl = mean_throughput(lambda p: p.routing_algorithm.value == "SSP-FL")
    ssp_rr = mean_throughput(lambda p: p.routing_algorithm.value == "SSP-RR")
    if ssp_fl and ssp_rr:
        checks.append(
            TrendCheck(
                name="SSP-FL at least comparable to SSP-RR (mean throughput)",
                passed=ssp_fl >= ssp_rr * 0.95,
                detail=f"SSP-FL={ssp_fl:.1f} Mb/s vs SSP-RR={ssp_rr:.1f} Mb/s",
            )
        )
    return checks

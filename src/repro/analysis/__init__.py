"""Analysis layer: paper reference data, table builders and comparisons.

The benchmark harness uses this package to print, for every table of the
paper, the reproduced rows side by side with the published numbers and a set
of trend checks (who wins, by what factor) that define reproduction success.
"""

from repro.analysis.reference import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    Table1Cell,
    Table3Row,
)
from repro.analysis.tables import (
    build_ber_table,
    build_table1,
    build_table2,
    build_table3,
    check_table1_trends,
)

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "Table1Cell",
    "Table3Row",
    "build_ber_table",
    "build_table1",
    "build_table2",
    "build_table3",
    "check_table1_trends",
]

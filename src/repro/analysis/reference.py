"""Published numbers from the paper, used as reference in the benchmark output.

Three data sets are embedded:

* ``PAPER_TABLE1`` — throughput [Mb/s] / NoC area [mm^2] for the WiMAX LDPC
  n = 2304, r = 1/2 code over topologies, parallelism degrees and routing
  algorithms (paper Table I; 300 MHz, Itmax = 10, latcore = 15, RL = 0, SCM,
  R = 0.5);
* ``PAPER_TABLE2`` — the P = 22 generalized-Kautz design case (paper Table II);
* ``PAPER_TABLE3`` — the state-of-the-art comparison (paper Table III).

These values are *reference data quoted from the publication*, not
measurements of this reproduction; the benches print both side by side.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Table1Cell:
    """One cell of paper Table I: a (topology, P, routing) evaluation."""

    topology: str
    degree: int
    parallelism: int
    routing: str
    node_architecture: str
    throughput_mbps: float
    noc_area_mm2: float


def _t1(topology, degree, parallelism, routing, arch, throughput, area) -> Table1Cell:
    return Table1Cell(
        topology=topology,
        degree=degree,
        parallelism=parallelism,
        routing=routing,
        node_architecture=arch,
        throughput_mbps=throughput,
        noc_area_mm2=area,
    )


#: Paper Table I (WiMAX LDPC n=2304, r=1/2).
PAPER_TABLE1: tuple[Table1Cell, ...] = (
    # D = 2, generalized De Bruijn.
    _t1("generalized-de-bruijn", 2, 16, "SSP-RR", "PP", 37.77, 2.02),
    _t1("generalized-de-bruijn", 2, 24, "SSP-RR", "PP", 41.19, 3.16),
    _t1("generalized-de-bruijn", 2, 32, "SSP-RR", "PP", 50.16, 3.68),
    _t1("generalized-de-bruijn", 2, 36, "SSP-RR", "PP", 50.31, 4.02),
    _t1("generalized-de-bruijn", 2, 16, "SSP-FL", "PP", 42.15, 1.82),
    _t1("generalized-de-bruijn", 2, 24, "SSP-FL", "PP", 45.47, 3.27),
    _t1("generalized-de-bruijn", 2, 32, "SSP-FL", "PP", 55.12, 0.65),
    _t1("generalized-de-bruijn", 2, 36, "SSP-FL", "PP", 56.20, 4.18),
    _t1("generalized-de-bruijn", 2, 16, "ASP-FT", "AP", 42.15, 0.40),
    _t1("generalized-de-bruijn", 2, 24, "ASP-FT", "AP", 45.47, 0.59),
    _t1("generalized-de-bruijn", 2, 32, "ASP-FT", "AP", 55.12, 0.65),
    _t1("generalized-de-bruijn", 2, 36, "ASP-FT", "AP", 56.84, 0.71),
    # D = 2, generalized Kautz.
    _t1("generalized-kautz", 2, 16, "SSP-RR", "PP", 38.10, 2.05),
    _t1("generalized-kautz", 2, 24, "SSP-RR", "PP", 49.23, 2.79),
    _t1("generalized-kautz", 2, 32, "SSP-RR", "PP", 48.20, 3.67),
    _t1("generalized-kautz", 2, 36, "SSP-RR", "PP", 55.47, 3.84),
    _t1("generalized-kautz", 2, 16, "SSP-FL", "PP", 41.69, 1.84),
    _t1("generalized-kautz", 2, 24, "SSP-FL", "PP", 53.09, 2.68),
    _t1("generalized-kautz", 2, 32, "SSP-FL", "PP", 55.74, 3.61),
    _t1("generalized-kautz", 2, 36, "SSP-FL", "PP", 61.71, 0.68),
    _t1("generalized-kautz", 2, 16, "ASP-FT", "AP", 41.69, 0.40),
    _t1("generalized-kautz", 2, 24, "ASP-FT", "AP", 53.09, 0.51),
    _t1("generalized-kautz", 2, 32, "ASP-FT", "AP", 55.74, 0.64),
    _t1("generalized-kautz", 2, 36, "ASP-FT", "AP", 61.71, 0.68),
    # D = 3, spidergon.
    _t1("spidergon", 3, 16, "SSP-RR", "PP", 55.74, 0.35),
    _t1("spidergon", 3, 24, "SSP-RR", "PP", 67.11, 1.34),
    _t1("spidergon", 3, 32, "SSP-RR", "PP", 70.67, 2.69),
    _t1("spidergon", 3, 36, "SSP-RR", "PP", 71.11, 3.14),
    _t1("spidergon", 3, 16, "SSP-FL", "PP", 55.47, 0.30),
    _t1("spidergon", 3, 24, "SSP-FL", "PP", 69.82, 1.11),
    _t1("spidergon", 3, 32, "SSP-FL", "PP", 75.62, 2.59),
    _t1("spidergon", 3, 36, "SSP-FL", "PP", 75.79, 3.20),
    _t1("spidergon", 3, 16, "ASP-FT", "AP", 55.31, 0.30),
    _t1("spidergon", 3, 24, "ASP-FT", "AP", 72.45, 0.42),
    _t1("spidergon", 3, 32, "ASP-FT", "AP", 76.63, 0.64),
    _t1("spidergon", 3, 36, "ASP-FT", "AP", 78.37, 0.73),
    # D = 3, generalized Kautz.
    _t1("generalized-kautz", 3, 16, "SSP-RR", "PP", 55.74, 0.29),
    _t1("generalized-kautz", 3, 24, "SSP-RR", "PP", 78.37, 0.47),
    _t1("generalized-kautz", 3, 32, "SSP-RR", "PP", 93.66, 0.96),
    _t1("generalized-kautz", 3, 36, "SSP-RR", "PP", 92.65, 1.22),
    _t1("generalized-kautz", 3, 16, "SSP-FL", "PP", 55.74, 0.28),
    _t1("generalized-kautz", 3, 24, "SSP-FL", "PP", 77.49, 0.43),
    _t1("generalized-kautz", 3, 32, "SSP-FL", "PP", 97.63, 0.69),
    _t1("generalized-kautz", 3, 36, "SSP-FL", "PP", 101.05, 0.86),
    _t1("generalized-kautz", 3, 16, "ASP-FT", "AP", 55.74, 0.29),
    _t1("generalized-kautz", 3, 24, "ASP-FT", "AP", 77.49, 0.35),
    _t1("generalized-kautz", 3, 32, "ASP-FT", "AP", 97.08, 0.42),
    _t1("generalized-kautz", 3, 36, "ASP-FT", "AP", 101.05, 0.46),
    # D = 4, rectangular honeycomb.
    _t1("honeycomb", 4, 16, "SSP-RR", "PP", 55.12, 0.42),
    _t1("honeycomb", 4, 24, "SSP-RR", "PP", 77.49, 0.61),
    _t1("honeycomb", 4, 32, "SSP-RR", "PP", 98.46, 0.72),
    _t1("honeycomb", 4, 36, "SSP-RR", "PP", 97.90, 1.03),
    _t1("honeycomb", 4, 16, "SSP-FL", "PP", 55.47, 0.39),
    _t1("honeycomb", 4, 24, "SSP-FL", "PP", 78.01, 0.53),
    _t1("honeycomb", 4, 32, "SSP-FL", "PP", 98.18, 0.63),
    _t1("honeycomb", 4, 36, "SSP-FL", "PP", 106.67, 0.87),
    _t1("honeycomb", 4, 16, "ASP-FT", "AP", 55.65, 0.40),
    _t1("honeycomb", 4, 24, "ASP-FT", "AP", 78.01, 0.48),
    _t1("honeycomb", 4, 32, "ASP-FT", "AP", 99.03, 0.55),
    _t1("honeycomb", 4, 36, "ASP-FT", "AP", 109.37, 0.58),
    # D = 4, generalized Kautz.
    _t1("generalized-kautz", 4, 16, "SSP-RR", "PP", 55.74, 0.31),
    _t1("generalized-kautz", 4, 24, "SSP-RR", "PP", 72.45, 0.60),
    _t1("generalized-kautz", 4, 32, "SSP-RR", "PP", 70.10, 1.06),
    _t1("generalized-kautz", 4, 36, "SSP-RR", "PP", 104.73, 0.76),
    _t1("generalized-kautz", 4, 16, "SSP-FL", "PP", 55.74, 0.29),
    _t1("generalized-kautz", 4, 24, "SSP-FL", "PP", 77.84, 0.49),
    _t1("generalized-kautz", 4, 32, "SSP-FL", "PP", 72.00, 0.98),
    _t1("generalized-kautz", 4, 36, "SSP-FL", "PP", 109.37, 0.72),
    _t1("generalized-kautz", 4, 16, "ASP-FT", "AP", 55.74, 0.39),
    _t1("generalized-kautz", 4, 24, "ASP-FT", "AP", 78.01, 0.47),
    _t1("generalized-kautz", 4, 32, "ASP-FT", "AP", 100.47, 0.54),
    _t1("generalized-kautz", 4, 36, "ASP-FT", "AP", 108.68, 0.58),
)


#: Paper Table II: P=22, D=3 generalized Kautz, R=0.5.
#: Keys: (mode, routing) -> (throughput Mb/s, NoC area mm^2).
PAPER_TABLE2: dict[tuple[str, str], tuple[float, float]] = {
    ("turbo", "SSP-RR"): (74.25, 0.63),
    ("turbo", "SSP-FL"): (74.26, 0.60),
    ("turbo", "ASP-FT"): (73.29, 0.69),
    ("LDPC", "SSP-RR"): (72.45, 0.46),
    ("LDPC", "SSP-FL"): (72.30, 0.39),
    ("LDPC", "ASP-FT"): (72.91, 0.34),
}


@dataclass(frozen=True)
class Table3Row:
    """One decoder of the paper's Table III comparison."""

    label: str
    parallelism: int | None
    technology_nm: int
    core_area_mm2: float | None
    total_area_mm2: float | None
    normalized_area_mm2: float | None
    clock_mhz: float
    power_mw: float | None
    max_iterations_ldpc: int | None
    max_iterations_turbo: int | None
    ldpc_throughput_mbps: float | None
    turbo_throughput_mbps: float | None
    notes: str = ""


#: Paper Table III (competitor numbers as published; this work's row is the
#: paper's own result and is regenerated by the model in the bench).
PAPER_TABLE3: tuple[Table3Row, ...] = (
    Table3Row(
        label="This work (paper)",
        parallelism=22,
        technology_nm=90,
        core_area_mm2=2.56,
        total_area_mm2=3.17,
        normalized_area_mm2=1.65,
        clock_mhz=300.0,
        power_mw=415.0,
        max_iterations_ldpc=10,
        max_iterations_turbo=8,
        ldpc_throughput_mbps=72.00,
        turbo_throughput_mbps=74.26,
        notes="worst case; turbo NoC at 75 MHz, SISO at 37.5 MHz, 59 mW",
    ),
    Table3Row(
        label="Murugappa et al. [9]",
        parallelism=8,
        technology_nm=90,
        core_area_mm2=2.44,
        total_area_mm2=2.6,
        normalized_area_mm2=1.36,
        clock_mhz=520.0,
        power_mw=None,
        max_iterations_ldpc=10,
        max_iterations_turbo=6,
        ldpc_throughput_mbps=62.5,
        turbo_throughput_mbps=173.0,
        notes="LDPC worst case, turbo best case",
    ),
    Table3Row(
        label="FlexiChaP (Alles et al.) [5]",
        parallelism=1,
        technology_nm=65,
        core_area_mm2=None,
        total_area_mm2=0.62,
        normalized_area_mm2=0.62,
        clock_mhz=400.0,
        power_mw=76.8,
        max_iterations_ldpc=20,
        max_iterations_turbo=5,
        ldpc_throughput_mbps=27.7,
        turbo_throughput_mbps=18.6,
        notes="ASIP; below the WiMAX throughput requirement",
    ),
    Table3Row(
        label="Gentile et al. [7]",
        parallelism=12,
        technology_nm=45,
        core_area_mm2=None,
        total_area_mm2=0.9,
        normalized_area_mm2=1.88,
        clock_mhz=150.0,
        power_mw=86.1,
        max_iterations_ldpc=8,
        max_iterations_turbo=8,
        ldpc_throughput_mbps=71.05,
        turbo_throughput_mbps=73.46,
        notes="minimum throughputs",
    ),
    Table3Row(
        label="Naessens et al. [6]",
        parallelism=384,
        technology_nm=45,
        core_area_mm2=None,
        total_area_mm2=0.94,
        normalized_area_mm2=1.96,
        clock_mhz=333.0,
        power_mw=1000.0,
        max_iterations_ldpc=25,
        max_iterations_turbo=None,
        ldpc_throughput_mbps=333.0,
        turbo_throughput_mbps=None,
        notes="average LDPC throughput; no minimum reported",
    ),
    Table3Row(
        label="Sun & Cavallaro [8]",
        parallelism=12,
        technology_nm=90,
        core_area_mm2=1.18,
        total_area_mm2=3.20,
        normalized_area_mm2=1.67,
        clock_mhz=500.0,
        power_mw=None,
        max_iterations_ldpc=15,
        max_iterations_turbo=6,
        ldpc_throughput_mbps=600.0,
        turbo_throughput_mbps=450.0,
        notes="best-case throughputs; WiMAX CTC not supported",
    ),
)

#: Memory / logic breakdown of the paper's processing core (Section V).
PAPER_CORE_BREAKDOWN = {
    "memories_share": 0.618,
    "siso_logic_share": 0.186,
    "ldpc_logic_share": 0.196,
    "noc_area_mm2": 0.61,
    "noc_share_of_total": 0.20,
}

"""Configuration of one NoC-based decoder instance."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.noc.config import NocConfiguration, RoutingAlgorithm


@dataclass(frozen=True)
class DecoderSpec:
    """Architectural parameters of one flexible turbo/LDPC decoder instance.

    The defaults describe the paper's WiMAX design case: 22 PEs on a degree-3
    generalized Kautz NoC, SSP-FL routing on the PP node architecture,
    ``R = 0.5``, 300 MHz in LDPC mode and a 75 MHz NoC clock in turbo mode
    (SISOs at half that), 10 LDPC / 8 turbo iterations, ``latcore = 15``.
    """

    topology_family: str = "generalized-kautz"
    parallelism: int = 22
    degree: int = 3
    noc: NocConfiguration = field(default_factory=NocConfiguration)
    ldpc_clock_hz: float = 300.0e6
    turbo_noc_clock_hz: float = 75.0e6
    ldpc_max_iterations: int = 10
    turbo_max_iterations: int = 8
    ldpc_core_latency_cycles: int = 15
    siso_core_latency_cycles: int = 15
    mapping_seed: int = 0
    mapping_attempts: int = 3

    def __post_init__(self) -> None:
        if self.parallelism < 2:
            raise ConfigurationError(
                f"parallelism must be at least 2, got {self.parallelism}"
            )
        if self.degree < 2:
            raise ConfigurationError(f"degree must be at least 2, got {self.degree}")
        if self.ldpc_clock_hz <= 0 or self.turbo_noc_clock_hz <= 0:
            raise ConfigurationError("clock frequencies must be positive")
        if self.ldpc_max_iterations <= 0 or self.turbo_max_iterations <= 0:
            raise ConfigurationError("iteration counts must be positive")
        if self.ldpc_core_latency_cycles < 0 or self.siso_core_latency_cycles < 0:
            raise ConfigurationError("core latencies must be non-negative")
        if self.mapping_attempts <= 0:
            raise ConfigurationError(
                f"mapping_attempts must be positive, got {self.mapping_attempts}"
            )

    @property
    def turbo_siso_clock_hz(self) -> float:
        """SISO clock: half of the NoC clock in turbo mode (paper Section V)."""
        return 0.5 * self.turbo_noc_clock_hz

    def with_routing(self, algorithm: RoutingAlgorithm) -> "DecoderSpec":
        """Copy of this spec with a different routing algorithm (AP/PP follows)."""
        return replace(self, noc=self.noc.with_routing(algorithm))

    def with_parallelism(self, parallelism: int) -> "DecoderSpec":
        """Copy of this spec with a different parallelism degree."""
        return replace(self, parallelism=parallelism)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.topology_family}(P={self.parallelism}, D={self.degree}) "
            f"{self.noc.describe()}, LDPC @{self.ldpc_clock_hz / 1e6:.0f} MHz x"
            f"{self.ldpc_max_iterations} it, turbo NoC @{self.turbo_noc_clock_hz / 1e6:.0f} MHz x"
            f"{self.turbo_max_iterations} it"
        )


#: The paper's WiMAX design case (Table II / Table III operating point).
WIMAX_DECODER_SPEC = DecoderSpec()

"""Design-space exploration: the NoC design flow of paper Section III.

The :class:`DesignSpaceExplorer` sweeps the Cartesian product of

* topology (family, degree),
* parallelism degree P,
* routing algorithm (and hence node architecture),

maps the target code on every point (graph partitioning + equivalent
interleaver), runs the cycle-accurate simulation and reports, per point,
``ncycles``, throughput (eq. (12)), NoC area and FIFO sizing — exactly the
quantities tabulated in the paper's Table I.

Simulation goes through the NoC sweep scheduler
(:func:`~repro.noc.sweep.run_noc_sweep`): the whole grid is submitted as one
batch of :class:`~repro.noc.sweep.NocSweepJob`s, the scheduler groups them by
(graph, configuration) — dispatching each group to the job-axis cycle kernel
or the scalar engine, whichever its measured cost model projects faster, and
optionally sharding group chunks across worker processes — and every
returned :class:`~repro.noc.sweep.NocSweepOutcome` carries its job, so design
points are assembled from the job identity rather than input ordering.
Topologies, routing tables and code mappings are each built once per sweep
and shared across all the points that reuse them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import DecoderSpec
from repro.core.throughput import ldpc_throughput_bps, turbo_throughput_bps
from repro.errors import ConfigurationError, MappingError, TopologyError
from repro.hw.area import NocAreaModel
from repro.ldpc.wimax import WimaxLdpcCode
from repro.mapping.ldpc_mapping import map_ldpc_code
from repro.mapping.turbo_mapping import map_turbo_code
from repro.noc.analytical import AnalyticalEstimate, AnalyticalNocModel
from repro.noc.config import RoutingAlgorithm
from repro.noc.results import SimulationResult
from repro.noc.routing import RoutingTables, build_routing_tables
from repro.noc.sweep import NocSweepCache, NocSweepJob, run_noc_sweep
from repro.noc.topologies import Topology, build_topology

#: Objectives the screened exploration ranks candidates by.
EXPLORATION_OBJECTIVES = ("throughput", "throughput_per_area")


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated point of the design space (one cell of Table I)."""

    topology_family: str
    degree: int
    parallelism: int
    routing_algorithm: RoutingAlgorithm
    node_architecture: str
    mode: str
    ncycles: int
    throughput_mbps: float
    noc_area_mm2: float
    max_fifo_depth: int
    locality: float
    mean_latency: float

    def cell(self) -> str:
        """Table-I-style ``throughput/area`` cell."""
        return f"{self.throughput_mbps:.2f}/{self.noc_area_mm2:.2f}"


@dataclass(frozen=True)
class ScreenedCandidate:
    """One design point ranked analytically, before (or instead of) simulation.

    ``est_throughput_mbps`` and ``est_noc_area_mm2`` come from the analytical
    NoC model's estimates plugged into the same throughput and area formulas
    the simulated design points use, so analytical and simulated rankings are
    directly comparable.
    """

    topology_family: str
    degree: int
    parallelism: int
    routing_algorithm: RoutingAlgorithm
    estimate: AnalyticalEstimate
    est_throughput_mbps: float
    est_noc_area_mm2: float

    def score(self, objective: str) -> float:
        """Ranking score for one exploration objective (higher is better)."""
        if objective == "throughput":
            return self.est_throughput_mbps
        if objective == "throughput_per_area":
            return self.est_throughput_mbps / max(self.est_noc_area_mm2, 1e-9)
        raise ConfigurationError(f"unknown exploration objective {objective!r}")


@dataclass(frozen=True)
class ExplorationReport:
    """Outcome of one (optionally screened) design-space exploration.

    ``points`` holds every *simulated* design point; ``winners`` maps each
    objective to the simulated point that maximizes it.  With analytical
    screening, ``n_skipped`` candidates of the ``n_candidates``-point grid
    never paid for cycle-exact simulation — ``screened`` records the full
    analytical ranking that decided which ones.
    """

    points: list[DesignPoint]
    winners: dict[str, DesignPoint]
    screen: str | None
    n_candidates: int
    n_simulated: int
    n_skipped: int
    screened: list[ScreenedCandidate]

    def describe(self) -> str:
        """One-line summary used by reports and the CI smoke run."""
        parts = [
            f"screen={self.screen or 'none'}",
            f"simulated {self.n_simulated}/{self.n_candidates}"
            f" (skipped {self.n_skipped})",
        ]
        for objective, point in self.winners.items():
            parts.append(
                f"{objective}: {point.topology_family}-D{point.degree}"
                f"-P{point.parallelism}-{point.routing_algorithm.value}"
            )
        return " | ".join(parts)


class DesignSpaceExplorer:
    """Sweeps NoC design points for a given LDPC code and/or turbo block size.

    Parameters
    ----------
    base_spec:
        Decoder spec providing clock frequencies, iteration counts and the
        base NoC configuration; topology family, degree, parallelism and
        routing algorithm are overridden per design point.
    seed:
        Partitioner / simulator seed (kept constant across the sweep so that
        differences between points are architectural, not stochastic).
    """

    def __init__(self, base_spec: DecoderSpec | None = None, seed: int = 0):
        self.base_spec = base_spec if base_spec is not None else DecoderSpec()
        self.seed = seed
        self._area_model = NocAreaModel()
        # Analytical screening model, created on first screened exploration;
        # its per-(family, degree, algorithm, policy) contention fits then
        # persist across explore() calls on this explorer.
        self._analytical: AnalyticalNocModel | None = None
        # The code->PE mapping depends only on the code and the parallelism,
        # not on the topology or routing algorithm, so it is cached across the
        # sweep (the paper's flow likewise partitions once per (code, P) pair).
        self._ldpc_mapping_cache: dict[tuple[int, str, int], object] = {}
        self._turbo_mapping_cache: dict[tuple[int, int], object] = {}
        # Topologies and routing tables are shared across every sweep point
        # that uses the same graph (three routing algorithms per cell in the
        # Table-I grid).  The dict uses the sweep scheduler's key order so it
        # doubles as the scheduler's ``topology_cache``.
        self._graph_cache: dict[
            tuple[str, int, int | None], tuple[Topology, RoutingTables]
        ] = {}

    def _cached_graph(
        self, family: str, degree: int | None, parallelism: int
    ) -> tuple[Topology, RoutingTables]:
        key = (family, parallelism, degree)
        if key not in self._graph_cache:
            topology = build_topology(family, parallelism, degree)
            self._graph_cache[key] = (topology, build_routing_tables(topology))
        return self._graph_cache[key]

    def _cached_ldpc_mapping(self, code: WimaxLdpcCode, parallelism: int):
        key = (code.n, code.rate_name, parallelism)
        if key not in self._ldpc_mapping_cache:
            self._ldpc_mapping_cache[key] = map_ldpc_code(
                code.h,
                parallelism,
                seed=self.seed,
                attempts=self.base_spec.mapping_attempts,
                label=f"{code.rate_name}-n{code.n}-P{parallelism}",
            )
        return self._ldpc_mapping_cache[key]

    def _cached_turbo_mapping(self, n_couples: int, parallelism: int):
        key = (n_couples, parallelism)
        if key not in self._turbo_mapping_cache:
            self._turbo_mapping_cache[key] = map_turbo_code(
                n_couples, parallelism, label=f"ctc-N{n_couples}-P{parallelism}"
            )
        return self._turbo_mapping_cache[key]

    # ------------------------------------------------------------------ #
    # Point assembly (simulation results -> Table-I rows)
    # ------------------------------------------------------------------ #
    def _ldpc_point(
        self,
        code: WimaxLdpcCode,
        job: NocSweepJob,
        result: SimulationResult,
        mapping,
        topology: Topology,
    ) -> DesignPoint:
        spec = self.base_spec
        throughput = ldpc_throughput_bps(
            info_bits=code.k,
            clock_hz=spec.ldpc_clock_hz,
            max_iterations=spec.ldpc_max_iterations,
            core_latency_cycles=spec.ldpc_core_latency_cycles,
            message_passing_cycles=result.ncycles,
        )
        return self._assemble_point(job, result, mapping, topology, "LDPC", throughput)

    def _turbo_point(
        self,
        n_couples: int,
        job: NocSweepJob,
        result: SimulationResult,
        mapping,
        topology: Topology,
    ) -> DesignPoint:
        spec = self.base_spec
        throughput = turbo_throughput_bps(
            info_bits=2 * n_couples,
            noc_clock_hz=spec.turbo_noc_clock_hz,
            max_iterations=spec.turbo_max_iterations,
            core_latency_cycles=spec.siso_core_latency_cycles,
            half_iteration_cycles=result.ncycles,
        )
        return self._assemble_point(job, result, mapping, topology, "turbo", throughput)

    def _assemble_point(
        self,
        job: NocSweepJob,
        result: SimulationResult,
        mapping,
        topology: Topology,
        mode: str,
        throughput: float,
    ) -> DesignPoint:
        noc_area = self._area_model.noc_area_mm2(
            n_nodes=job.parallelism,
            crossbar_size=topology.crossbar_size,
            config=job.config,
            per_node_fifo_depth=result.per_node_max_fifo,
        )
        return DesignPoint(
            topology_family=job.family,
            degree=job.degree,
            parallelism=job.parallelism,
            routing_algorithm=job.config.routing_algorithm,
            node_architecture=job.config.node_architecture.value,
            mode=mode,
            ncycles=result.ncycles,
            throughput_mbps=throughput / 1e6,
            noc_area_mm2=noc_area,
            max_fifo_depth=result.max_fifo_occupancy,
            locality=mapping.locality,
            mean_latency=result.statistics.mean_latency,
        )

    # ------------------------------------------------------------------ #
    # Single-point evaluation
    # ------------------------------------------------------------------ #
    def evaluate_ldpc_point(
        self,
        code: WimaxLdpcCode,
        topology_family: str,
        degree: int,
        parallelism: int,
        routing_algorithm: RoutingAlgorithm,
    ) -> DesignPoint:
        """Map, simulate and cost one LDPC design point."""
        config = self.base_spec.noc.with_routing(routing_algorithm)
        topology, _ = self._cached_graph(topology_family, degree, parallelism)
        mapping = self._cached_ldpc_mapping(code, parallelism)
        job = NocSweepJob(
            family=topology_family,
            parallelism=parallelism,
            degree=degree,
            config=config,
            traffic=mapping.traffic,
            seed=self.seed,
        )
        (outcome,) = run_noc_sweep([job], topology_cache=self._graph_cache)
        return self._ldpc_point(code, outcome.job, outcome.result, mapping, topology)

    def evaluate_turbo_point(
        self,
        n_couples: int,
        topology_family: str,
        degree: int,
        parallelism: int,
        routing_algorithm: RoutingAlgorithm,
    ) -> DesignPoint:
        """Map, simulate and cost one turbo design point."""
        config = self.base_spec.noc.with_routing(routing_algorithm)
        topology, _ = self._cached_graph(topology_family, degree, parallelism)
        mapping = self._cached_turbo_mapping(n_couples, parallelism)
        job = NocSweepJob(
            family=topology_family,
            parallelism=parallelism,
            degree=degree,
            config=config,
            traffic=mapping.traffic_forward,
            seed=self.seed,
        )
        (outcome,) = run_noc_sweep([job], topology_cache=self._graph_cache)
        return self._turbo_point(n_couples, outcome.job, outcome.result, mapping, topology)

    # ------------------------------------------------------------------ #
    # Sweeps
    # ------------------------------------------------------------------ #
    def sweep_ldpc(
        self,
        code: WimaxLdpcCode,
        topologies: list[tuple[str, int]],
        parallelisms: list[int],
        routing_algorithms: list[RoutingAlgorithm] | None = None,
        skip_invalid: bool = True,
        parallel: str | None = None,
        max_workers: int | None = None,
        cache: NocSweepCache | None = None,
    ) -> list[DesignPoint]:
        """Evaluate the Cartesian product of topologies, parallelisms and algorithms.

        ``topologies`` is a list of ``(family, degree)`` pairs.  Invalid
        combinations (e.g. a toroidal mesh whose node count has no valid grid)
        are skipped when ``skip_invalid`` is true, mirroring the paper's
        practice of only reporting feasible points.

        The whole grid is submitted to the sweep scheduler as one batch; the
        scheduler's cost model picks the fastest engine per (graph,
        configuration) group.  ``parallel="process"`` shards the simulation
        group chunks across up to ``max_workers`` worker processes when the
        grid is big enough to amortize the pool (mapping and cost models stay
        in-process).  Design points are assembled from each outcome's
        attached job, not from positional bookkeeping.
        """
        algorithms = routing_algorithms or list(RoutingAlgorithm)
        jobs: list[NocSweepJob] = []
        context: dict[int, tuple] = {}
        for family, degree in topologies:
            for parallelism in parallelisms:
                try:
                    topology, _ = self._cached_graph(family, degree, parallelism)
                    mapping = self._cached_ldpc_mapping(code, parallelism)
                    configs = [self.base_spec.noc.with_routing(a) for a in algorithms]
                except (TopologyError, MappingError, ConfigurationError):
                    if not skip_invalid:
                        raise
                    continue
                for config in configs:
                    job = NocSweepJob(
                        family=family,
                        parallelism=parallelism,
                        degree=degree,
                        config=config,
                        traffic=mapping.traffic,
                        seed=self.seed,
                    )
                    jobs.append(job)
                    context[id(job)] = (mapping, topology)
        outcomes = run_noc_sweep(
            jobs, topology_cache=self._graph_cache, parallel=parallel,
            max_workers=max_workers, cache=cache,
        )
        points: list[DesignPoint] = []
        for outcome in outcomes:
            mapping, topology = context[id(outcome.job)]
            points.append(
                self._ldpc_point(code, outcome.job, outcome.result, mapping, topology)
            )
        return points

    # ------------------------------------------------------------------ #
    # Screened exploration
    # ------------------------------------------------------------------ #
    def _screen_candidate(
        self,
        code: WimaxLdpcCode,
        family: str,
        degree: int,
        parallelism: int,
        routing_algorithm: RoutingAlgorithm,
    ) -> ScreenedCandidate:
        """Rank one candidate analytically: estimated throughput and area."""
        spec = self.base_spec
        config = spec.noc.with_routing(routing_algorithm)
        topology, tables = self._cached_graph(family, degree, parallelism)
        mapping = self._cached_ldpc_mapping(code, parallelism)
        assert self._analytical is not None
        estimate = self._analytical.estimate(
            family, degree, config, mapping.traffic, tables=tables
        )
        est_throughput = ldpc_throughput_bps(
            info_bits=code.k,
            clock_hz=spec.ldpc_clock_hz,
            max_iterations=spec.ldpc_max_iterations,
            core_latency_cycles=spec.ldpc_core_latency_cycles,
            message_passing_cycles=max(int(round(estimate.ncycles)), 1),
        )
        fifo_depth = max(int(round(estimate.max_fifo_occupancy)), 1)
        est_area = self._area_model.noc_area_mm2(
            n_nodes=parallelism,
            crossbar_size=topology.crossbar_size,
            config=config,
            per_node_fifo_depth=[fifo_depth] * parallelism,
        )
        return ScreenedCandidate(
            topology_family=family,
            degree=degree,
            parallelism=parallelism,
            routing_algorithm=routing_algorithm,
            estimate=estimate,
            est_throughput_mbps=est_throughput / 1e6,
            est_noc_area_mm2=est_area,
        )

    def explore(
        self,
        code: WimaxLdpcCode,
        topologies: list[tuple[str, int]],
        parallelisms: list[int],
        routing_algorithms: list[RoutingAlgorithm] | None = None,
        screen: str | None = None,
        confirm_top: int = 4,
        objectives: tuple[str, ...] = EXPLORATION_OBJECTIVES,
        skip_invalid: bool = True,
        parallel: str | None = None,
        max_workers: int | None = None,
        cache: NocSweepCache | None = None,
    ) -> ExplorationReport:
        """Explore the design grid, optionally screening it analytically.

        With ``screen=None`` every feasible grid point is simulated — the
        exhaustive Table-I flow.  With ``screen="analytical"`` the whole grid
        is first *ranked* by the analytical NoC model (closed-form hop
        statistics + per-family fitted contention correction, no simulation)
        and only the union of the top ``confirm_top`` candidates per
        objective is dispatched through the cycle-exact sweep; everything
        else is skipped.  Winners are always chosen from *simulated* numbers,
        so screening can only miss a winner if the analytical ranking drops
        it below ``confirm_top`` — docs/noc-analytical.md quantifies when
        that is safe.

        ``cache`` (a :class:`~repro.noc.sweep.NocSweepCache`) short-circuits
        previously simulated points across exploration runs and processes.
        """
        if screen not in (None, "analytical"):
            raise ConfigurationError(
                f"screen must be None or 'analytical', got {screen!r}"
            )
        if confirm_top < 1:
            raise ConfigurationError(f"confirm_top must be >= 1, got {confirm_top}")
        if not objectives:
            raise ConfigurationError("explore requires at least one objective")
        for objective in objectives:
            if objective not in EXPLORATION_OBJECTIVES:
                raise ConfigurationError(
                    f"unknown exploration objective {objective!r}; "
                    f"known: {EXPLORATION_OBJECTIVES}"
                )
        algorithms = routing_algorithms or list(RoutingAlgorithm)
        candidates: list[tuple[str, int, int, RoutingAlgorithm]] = []
        for family, degree in topologies:
            for parallelism in parallelisms:
                try:
                    self._cached_graph(family, degree, parallelism)
                    self._cached_ldpc_mapping(code, parallelism)
                except (TopologyError, MappingError, ConfigurationError):
                    if not skip_invalid:
                        raise
                    continue
                for algorithm in algorithms:
                    candidates.append((family, degree, parallelism, algorithm))

        screened: list[ScreenedCandidate] = []
        if screen == "analytical" and len(candidates) > confirm_top:
            if self._analytical is None:
                self._analytical = AnalyticalNocModel()
            screened = [self._screen_candidate(code, *c) for c in candidates]
            selected: dict[tuple, None] = {}  # insertion-ordered set
            for objective in objectives:
                ranked = sorted(
                    screened, key=lambda s: s.score(objective), reverse=True
                )
                for winner in ranked[:confirm_top]:
                    key = (
                        winner.topology_family, winner.degree,
                        winner.parallelism, winner.routing_algorithm,
                    )
                    selected[key] = None
            to_simulate = [c for c in candidates if c in selected]
        else:
            to_simulate = candidates

        # One batched sweep over every selected combo, so the scheduler still
        # groups jobs by (graph, configuration) across the whole selection.
        jobs: list[NocSweepJob] = []
        context: dict[int, tuple] = {}
        for family, degree, parallelism, algorithm in to_simulate:
            topology, _ = self._cached_graph(family, degree, parallelism)
            mapping = self._cached_ldpc_mapping(code, parallelism)
            job = NocSweepJob(
                family=family,
                parallelism=parallelism,
                degree=degree,
                config=self.base_spec.noc.with_routing(algorithm),
                traffic=mapping.traffic,
                seed=self.seed,
            )
            jobs.append(job)
            context[id(job)] = (mapping, topology)
        outcomes = run_noc_sweep(
            jobs, topology_cache=self._graph_cache, parallel=parallel,
            max_workers=max_workers, cache=cache,
        )
        points: list[DesignPoint] = []
        for outcome in outcomes:
            mapping, topology = context[id(outcome.job)]
            points.append(
                self._ldpc_point(code, outcome.job, outcome.result, mapping, topology)
            )
        if not points:
            raise ConfigurationError("explore produced no feasible design points")
        winners = {
            objective: max(points, key=lambda p: self._objective_value(p, objective))
            for objective in objectives
        }
        return ExplorationReport(
            points=points,
            winners=winners,
            screen=screen,
            n_candidates=len(candidates),
            n_simulated=len(to_simulate),
            n_skipped=len(candidates) - len(to_simulate),
            screened=screened,
        )

    @staticmethod
    def _objective_value(point: DesignPoint, objective: str) -> float:
        if objective == "throughput":
            return point.throughput_mbps
        if objective == "throughput_per_area":
            return point.throughput_mbps / max(point.noc_area_mm2, 1e-9)
        raise ConfigurationError(f"unknown exploration objective {objective!r}")

    def best_point(
        self, points: list[DesignPoint], throughput_floor_mbps: float = 0.0
    ) -> DesignPoint:
        """The point with the best throughput-to-area ratio above a throughput floor."""
        if not points:
            raise ConfigurationError("best_point requires a non-empty sweep")
        eligible = [p for p in points if p.throughput_mbps >= throughput_floor_mbps]
        if not eligible:
            eligible = points
        return max(eligible, key=lambda p: p.throughput_mbps / max(p.noc_area_mm2, 1e-9))

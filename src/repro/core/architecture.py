"""The flexible NoC-based turbo/LDPC decoder architecture.

:class:`NocDecoderArchitecture` is the paper's contribution seen as one
object: a set of P processing elements interconnected by an intra-IP NoC,
configurable at run time for LDPC (layered normalized min-sum) or turbo
(Max-Log-MAP double-binary) decoding.  It offers three families of services:

* **mapping + cycle-accurate evaluation** — place a WiMAX code on the NoC,
  simulate the message-passing phase and report ``ncycles``, throughput
  (eq. (12)), FIFO sizing, area and power;
* **functional decoding** — bit-true frame decoding in either mode (the NoC
  changes *when* messages arrive, not their values, so the functional path
  reuses the substrate decoders directly);
* **reporting** — structural and cost breakdowns used by the examples and the
  benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DecoderSpec
from repro.core.throughput import ldpc_throughput_bps, turbo_throughput_bps
from repro.errors import ConfigurationError
from repro.hw.area import AreaBreakdown, decoder_area
from repro.hw.memory import DecoderMemoryPlan, plan_shared_memories
from repro.hw.power import PowerModel, PowerReport
from repro.ldpc.layered import LayeredDecoderResult, LayeredMinSumDecoder
from repro.ldpc.wimax import WimaxLdpcCode
from repro.mapping.ldpc_mapping import LdpcMapping, map_ldpc_code
from repro.mapping.turbo_mapping import TurboMapping, map_turbo_code
from repro.noc.routing import RoutingTables, build_routing_tables
from repro.noc.simulator import NocSimulator, SimulationResult
from repro.noc.topologies import Topology, build_topology
from repro.pe.ldpc_core import LdpcCoreModel
from repro.pe.processing_element import ProcessingElement
from repro.pe.siso_core import SisoCoreModel
from repro.turbo.decoder import TurboDecoder, TurboDecoderResult
from repro.turbo.encoder import TurboEncoder


@dataclass(frozen=True)
class LdpcEvaluation:
    """System-level evaluation of one LDPC code on one decoder instance."""

    code_label: str
    mapping: LdpcMapping
    simulation: SimulationResult
    throughput_bps: float
    area: AreaBreakdown
    power: PowerReport

    @property
    def throughput_mbps(self) -> float:
        """Throughput in Mb/s."""
        return self.throughput_bps / 1.0e6


@dataclass(frozen=True)
class TurboEvaluation:
    """System-level evaluation of one turbo code on one decoder instance."""

    code_label: str
    mapping: TurboMapping
    simulation: SimulationResult
    throughput_bps: float
    area: AreaBreakdown
    power: PowerReport

    @property
    def throughput_mbps(self) -> float:
        """Throughput in Mb/s."""
        return self.throughput_bps / 1.0e6


@dataclass
class NocDecoderArchitecture:
    """A flexible turbo/LDPC decoder built around an intra-IP NoC.

    Parameters
    ----------
    spec:
        Architectural parameters; defaults to the paper's WiMAX design case.
    """

    spec: DecoderSpec = field(default_factory=DecoderSpec)

    def __post_init__(self) -> None:
        self._topology: Topology | None = None
        self._routing: RoutingTables | None = None
        self._memory_plan: DecoderMemoryPlan | None = None
        self._ldpc_mappings: dict[str, LdpcMapping] = {}
        self._turbo_mappings: dict[int, TurboMapping] = {}

    # ------------------------------------------------------------------ #
    # Lazily built structural views
    # ------------------------------------------------------------------ #
    @property
    def topology(self) -> Topology:
        """The NoC topology of this decoder instance."""
        if self._topology is None:
            self._topology = build_topology(
                self.spec.topology_family, self.spec.parallelism, self.spec.degree
            )
        return self._topology

    @property
    def routing_tables(self) -> RoutingTables:
        """Shortest-path routing tables for the topology."""
        if self._routing is None:
            self._routing = build_routing_tables(self.topology)
        return self._routing

    @property
    def memory_plan(self) -> DecoderMemoryPlan:
        """Shared-memory plan for full WiMAX support at this parallelism."""
        if self._memory_plan is None:
            self._memory_plan = plan_shared_memories(n_pes=self.spec.parallelism)
        return self._memory_plan

    def processing_elements(self) -> list[ProcessingElement]:
        """The P processing elements of this decoder."""
        ldpc_core = LdpcCoreModel(
            output_rate=self.spec.noc.injection_rate,
            pipeline_latency=self.spec.ldpc_core_latency_cycles,
        )
        siso_core = SisoCoreModel(pipeline_latency=self.spec.siso_core_latency_cycles)
        return [
            ProcessingElement(
                index=index,
                ldpc_core=ldpc_core,
                siso_core=siso_core,
                memory_plan=self.memory_plan,
            )
            for index in range(self.spec.parallelism)
        ]

    # ------------------------------------------------------------------ #
    # Mapping
    # ------------------------------------------------------------------ #
    def map_ldpc(self, code: WimaxLdpcCode) -> LdpcMapping:
        """Partition an LDPC code over the PEs (cached per code)."""
        key = f"{code.rate_name}:{code.n}"
        if key not in self._ldpc_mappings:
            self._ldpc_mappings[key] = map_ldpc_code(
                code.h,
                self.spec.parallelism,
                seed=self.spec.mapping_seed,
                attempts=self.spec.mapping_attempts,
                label=f"wimax-ldpc-{code.rate_name}-n{code.n}-P{self.spec.parallelism}",
            )
        return self._ldpc_mappings[key]

    def map_turbo(self, n_couples: int) -> TurboMapping:
        """Partition a turbo frame over the SISOs (cached per block size)."""
        if n_couples not in self._turbo_mappings:
            self._turbo_mappings[n_couples] = map_turbo_code(
                n_couples,
                self.spec.parallelism,
                label=f"wimax-ctc-N{n_couples}-P{self.spec.parallelism}",
            )
        return self._turbo_mappings[n_couples]

    # ------------------------------------------------------------------ #
    # Cycle-accurate evaluation
    # ------------------------------------------------------------------ #
    def _simulator(self, injection_rate: float | None = None) -> NocSimulator:
        config = self.spec.noc
        if injection_rate is not None and injection_rate != config.injection_rate:
            from dataclasses import replace

            config = replace(config, injection_rate=injection_rate)
        return NocSimulator(
            self.topology,
            config,
            routing_tables=self.routing_tables,
            seed=self.spec.mapping_seed,
        )

    def simulate_ldpc_iteration(self, code: WimaxLdpcCode) -> SimulationResult:
        """Simulate the message-passing phase of one LDPC iteration."""
        mapping = self.map_ldpc(code)
        return self._simulator().run(mapping.traffic)

    def simulate_turbo_half_iteration(self, n_couples: int) -> SimulationResult:
        """Simulate the message-passing phase of one turbo half-iteration.

        The injection rate is the configured ``R`` (the paper's Table II uses
        R = 0.5 for both modes); use :class:`~repro.pe.siso_core.SisoCoreModel`
        to reason about the SISO-limited rate of R = 1/3 separately.
        """
        mapping = self.map_turbo(n_couples)
        return self._simulator().run(mapping.traffic_forward)

    def evaluate_ldpc(self, code: WimaxLdpcCode) -> LdpcEvaluation:
        """Full system-level evaluation of one LDPC code (throughput, area, power)."""
        mapping = self.map_ldpc(code)
        simulation = self.simulate_ldpc_iteration(code)
        throughput = ldpc_throughput_bps(
            info_bits=code.k,
            clock_hz=self.spec.ldpc_clock_hz,
            max_iterations=self.spec.ldpc_max_iterations,
            core_latency_cycles=self.spec.ldpc_core_latency_cycles,
            message_passing_cycles=simulation.ncycles,
        )
        area = self.area(simulation)
        power = self.power_ldpc(code, simulation, area, throughput)
        return LdpcEvaluation(
            code_label=code.describe(),
            mapping=mapping,
            simulation=simulation,
            throughput_bps=throughput,
            area=area,
            power=power,
        )

    def evaluate_turbo(self, n_couples: int) -> TurboEvaluation:
        """Full system-level evaluation of one CTC block size."""
        mapping = self.map_turbo(n_couples)
        simulation = self.simulate_turbo_half_iteration(n_couples)
        info_bits = 2 * n_couples
        throughput = turbo_throughput_bps(
            info_bits=info_bits,
            noc_clock_hz=self.spec.turbo_noc_clock_hz,
            max_iterations=self.spec.turbo_max_iterations,
            core_latency_cycles=self.spec.siso_core_latency_cycles,
            half_iteration_cycles=simulation.ncycles,
        )
        area = self.area(simulation)
        power = self.power_turbo(n_couples, simulation, area, throughput)
        return TurboEvaluation(
            code_label=f"WiMAX CTC N={n_couples} couples ({info_bits} bits)",
            mapping=mapping,
            simulation=simulation,
            throughput_bps=throughput,
            area=area,
            power=power,
        )

    # ------------------------------------------------------------------ #
    # Cost models
    # ------------------------------------------------------------------ #
    def area(self, simulation: SimulationResult | None = None) -> AreaBreakdown:
        """Area breakdown; FIFO depths come from a simulation result when given."""
        if simulation is not None and simulation.per_node_max_fifo:
            fifo_depths: list[int] | int = simulation.per_node_max_fifo
        else:
            fifo_depths = 4
        return decoder_area(
            n_pes=self.spec.parallelism,
            crossbar_size=self.topology.crossbar_size,
            config=self.spec.noc,
            per_node_fifo_depth=fifo_depths,
            memory_plan=self.memory_plan,
        )

    def noc_area_mm2(self, simulation: SimulationResult) -> float:
        """NoC-only area (the quantity reported in the paper's Table I)."""
        return self.area(simulation).noc_mm2

    def power_ldpc(
        self,
        code: WimaxLdpcCode,
        simulation: SimulationResult,
        area: AreaBreakdown,
        throughput_bps: float,
    ) -> PowerReport:
        """Power estimate in LDPC mode."""
        frame_duration = code.k / throughput_bps
        core = LdpcCoreModel(output_rate=self.spec.noc.injection_rate)
        accesses_per_iteration = core.memory_accesses_per_iteration(code.h.row_degrees())
        accesses_per_frame = accesses_per_iteration * self.spec.ldpc_max_iterations
        hops_per_frame = (
            simulation.statistics.total_hops * self.spec.ldpc_max_iterations
        )
        return PowerModel().estimate(
            mode="LDPC",
            n_pes=self.spec.parallelism,
            pe_clock_hz=self.spec.ldpc_clock_hz,
            frame_duration_s=frame_duration,
            memory_accesses_per_frame=accesses_per_frame,
            message_hops_per_frame=hops_per_frame,
            flit_bits=self.spec.noc.flit_bits(self.spec.parallelism),
            total_area_mm2=area.total_mm2,
        )

    def power_turbo(
        self,
        n_couples: int,
        simulation: SimulationResult,
        area: AreaBreakdown,
        throughput_bps: float,
    ) -> PowerReport:
        """Power estimate in turbo mode."""
        info_bits = 2 * n_couples
        frame_duration = info_bits / throughput_bps
        siso = SisoCoreModel(pipeline_latency=self.spec.siso_core_latency_cycles)
        window = -(-n_couples // self.spec.parallelism)
        accesses_per_half = (
            siso.memory_accesses_per_half_iteration(window) * self.spec.parallelism
        )
        accesses_per_frame = accesses_per_half * 2 * self.spec.turbo_max_iterations
        hops_per_frame = (
            simulation.statistics.total_hops * 2 * self.spec.turbo_max_iterations
        )
        return PowerModel().estimate(
            mode="turbo",
            n_pes=self.spec.parallelism,
            pe_clock_hz=self.spec.turbo_siso_clock_hz,
            frame_duration_s=frame_duration,
            memory_accesses_per_frame=accesses_per_frame,
            message_hops_per_frame=hops_per_frame,
            flit_bits=self.spec.noc.flit_bits(self.spec.parallelism),
            total_area_mm2=area.total_mm2,
        )

    # ------------------------------------------------------------------ #
    # Functional decoding
    # ------------------------------------------------------------------ #
    def decode_ldpc_frame(
        self,
        code: WimaxLdpcCode,
        channel_llrs: np.ndarray,
        fixed_point: bool = True,
    ) -> LayeredDecoderResult:
        """Bit-true LDPC decoding of one frame with the layered min-sum core."""
        decoder = LayeredMinSumDecoder(
            code.h,
            max_iterations=self.spec.ldpc_max_iterations,
            fixed_point=fixed_point,
        )
        return decoder.decode(channel_llrs)

    def decode_turbo_frame(
        self,
        encoder: TurboEncoder,
        systematic_llrs: np.ndarray,
        parity1_llrs: np.ndarray,
        parity2_llrs: np.ndarray,
        bit_level_exchange: bool = True,
    ) -> TurboDecoderResult:
        """Bit-true turbo decoding of one frame with the Max-Log-MAP SISOs."""
        if encoder.n_couples < self.spec.parallelism:
            raise ConfigurationError(
                f"frame of {encoder.n_couples} couples cannot occupy "
                f"{self.spec.parallelism} SISOs"
            )
        decoder = TurboDecoder(
            encoder,
            max_iterations=self.spec.turbo_max_iterations,
            bit_level_exchange=bit_level_exchange,
        )
        return decoder.decode(systematic_llrs, parity1_llrs, parity2_llrs)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """Multi-line structural summary of the decoder instance."""
        lines = [
            "NoC-based flexible turbo/LDPC decoder",
            f"  spec      : {self.spec.describe()}",
            f"  topology  : {self.topology.name}, diameter {self.routing_tables.diameter}, "
            f"avg distance {self.routing_tables.average_distance:.2f}",
            f"  memories  : {self.memory_plan.describe()}",
        ]
        return "\n".join(lines)

"""Core of the reproduction: the flexible NoC-based turbo/LDPC decoder architecture.

This package ties the substrates together into the paper's contribution:

* :class:`~repro.core.config.DecoderSpec` — the architectural parameters of
  one decoder instance (topology family, parallelism P, degree D, NoC
  configuration, clock frequencies, iteration counts),
* :class:`~repro.core.architecture.NocDecoderArchitecture` — a decoder
  instance that can map WiMAX codes onto its NoC, run the cycle-accurate
  message-passing simulation, evaluate throughput (paper eq. (12)), area and
  power, and functionally decode frames in either mode,
* :class:`~repro.core.design_flow.DesignSpaceExplorer` — the design flow of
  Section III that sweeps topologies, parallelism degrees and routing
  algorithms to produce Table-I-style results.
"""

from repro.core.config import DecoderSpec, WIMAX_DECODER_SPEC
from repro.core.throughput import ldpc_throughput_bps, turbo_throughput_bps
from repro.core.architecture import (
    LdpcEvaluation,
    NocDecoderArchitecture,
    TurboEvaluation,
)
from repro.core.design_flow import (
    EXPLORATION_OBJECTIVES,
    DesignPoint,
    DesignSpaceExplorer,
    ExplorationReport,
    ScreenedCandidate,
)

__all__ = [
    "DecoderSpec",
    "WIMAX_DECODER_SPEC",
    "ldpc_throughput_bps",
    "turbo_throughput_bps",
    "NocDecoderArchitecture",
    "LdpcEvaluation",
    "TurboEvaluation",
    "DesignPoint",
    "EXPLORATION_OBJECTIVES",
    "ExplorationReport",
    "ScreenedCandidate",
    "DesignSpaceExplorer",
]

"""Throughput models (paper eq. (12) and its turbo counterpart)."""

from __future__ import annotations

from repro.errors import ModelError


def ldpc_throughput_bps(
    info_bits: int,
    clock_hz: float,
    max_iterations: int,
    core_latency_cycles: int,
    message_passing_cycles: int,
) -> float:
    """LDPC throughput in bits per second (paper eq. (12)).

    ``T = (N - M) * fclk / ((latcore + ncycles) * Itmax)`` where ``N - M`` is
    the number of information bits, ``latcore`` the decoding-core latency and
    ``ncycles`` the duration of the message-passing phase of one iteration.
    """
    if info_bits <= 0:
        raise ModelError(f"info_bits must be positive, got {info_bits}")
    if clock_hz <= 0:
        raise ModelError(f"clock_hz must be positive, got {clock_hz}")
    if max_iterations <= 0:
        raise ModelError(f"max_iterations must be positive, got {max_iterations}")
    if core_latency_cycles < 0 or message_passing_cycles <= 0:
        raise ModelError("cycle counts must be non-negative (ncycles strictly positive)")
    cycles_per_iteration = core_latency_cycles + message_passing_cycles
    return info_bits * clock_hz / (cycles_per_iteration * max_iterations)


def turbo_throughput_bps(
    info_bits: int,
    noc_clock_hz: float,
    max_iterations: int,
    core_latency_cycles: int,
    half_iteration_cycles: int,
) -> float:
    """Turbo throughput in bits per second.

    Each turbo iteration consists of two half-iterations (one per constituent
    SISO); every half-iteration pays the SISO latency plus the message-passing
    phase measured in NoC cycles:

    ``T = K * fclk_NoC / ((latSISO + ncycles_half) * 2 * Itmax)``.
    """
    if info_bits <= 0:
        raise ModelError(f"info_bits must be positive, got {info_bits}")
    if noc_clock_hz <= 0:
        raise ModelError(f"noc_clock_hz must be positive, got {noc_clock_hz}")
    if max_iterations <= 0:
        raise ModelError(f"max_iterations must be positive, got {max_iterations}")
    if core_latency_cycles < 0 or half_iteration_cycles <= 0:
        raise ModelError("cycle counts must be non-negative (ncycles strictly positive)")
    cycles_per_iteration = 2 * (core_latency_cycles + half_iteration_cycles)
    return info_bits * noc_clock_hz / (cycles_per_iteration * max_iterations)


def meets_wimax_requirement(throughput_bps: float, requirement_mbps: float = 70.0) -> bool:
    """True when a throughput satisfies the IEEE 802.16e requirement (70 Mb/s)."""
    if throughput_bps < 0:
        raise ModelError(f"throughput must be non-negative, got {throughput_bps}")
    return throughput_bps >= requirement_mbps * 1.0e6
